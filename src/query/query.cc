#include "query/query.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace seda::query {

Result<ContextSpec> ContextSpec::Parse(const std::string& text) {
  ContextSpec spec;
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty() || stripped == "*") return spec;
  std::vector<std::string> pieces = Split(std::string(stripped), '|');
  for (size_t i = 0; i < pieces.size(); ++i) {
    std::string piece(StripWhitespace(pieces[i]));
    if (piece.empty()) {
      return Status::InvalidArgument(
          "context '" + std::string(stripped) + "' has an empty alternative (" +
          std::to_string(i + 1) + " of " + std::to_string(pieces.size()) +
          "); remove the stray '|'");
    }
    if (piece == "*") {
      // '*' admits every context, so the whole disjunction is unrestricted.
      return ContextSpec();
    }
    if (piece[0] == '/') {
      spec.AddPath(piece);
    } else {
      spec.AddTagPattern(piece);
    }
  }
  return spec;
}

void ContextSpec::AddPath(const std::string& path) {
  alternatives_.push_back({true, path});
}

void ContextSpec::AddTagPattern(const std::string& pattern) {
  alternatives_.push_back({false, pattern});
}

bool ContextSpec::Matches(const std::string& path, const std::string& last_tag) const {
  if (unrestricted()) return true;
  for (const Alternative& alt : alternatives_) {
    if (alt.is_path) {
      if (alt.text == path) return true;
    } else {
      if (WildcardMatch(alt.text, last_tag)) return true;
    }
  }
  return false;
}

std::vector<store::PathId> ContextSpec::ResolvePathIds(
    const store::PathDictionary& dict) const {
  std::vector<store::PathId> out;
  if (unrestricted()) {
    out.resize(dict.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<store::PathId>(i);
    return out;
  }
  for (const Alternative& alt : alternatives_) {
    if (alt.is_path) {
      store::PathId id = dict.Find(alt.text);
      if (id != store::kInvalidPathId) out.push_back(id);
    } else {
      for (store::PathId id : dict.PathsMatchingTagPattern(alt.text)) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ContextSpec::ToString() const {
  if (unrestricted()) return "*";
  std::vector<std::string> parts;
  for (const Alternative& alt : alternatives_) parts.push_back(alt.text);
  return Join(parts, " | ");
}

std::string QueryTerm::ToString() const {
  std::string search_text = search ? search->ToString() : "*";
  return "(" + context.ToString() + ", " + search_text + ")";
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " AND ";
    out += terms[i].ToString();
  }
  return out;
}

namespace {

/// The run of non-whitespace characters at `pos` (capped for readability),
/// for pointing at the offending token in parse errors.
std::string TokenAt(const std::string& input, size_t pos) {
  if (pos >= input.size()) return "<end of input>";
  size_t end = pos;
  while (end < input.size() && end - pos < 24 &&
         !std::isspace(static_cast<unsigned char>(input[end]))) {
    ++end;
  }
  return "'" + input.substr(pos, end - pos) + "'";
}

std::string AtOffset(size_t pos) { return " at offset " + std::to_string(pos); }

}  // namespace

Result<Query> ParseQuery(const std::string& input) {
  Query query;
  size_t pos = 0;
  auto skip_separators = [&]() {
    while (pos < input.size()) {
      char c = input[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      // Term separators: AND, &&, ∧ (UTF-8 e2 88 a7).
      if (input.compare(pos, 3, "AND") == 0 || input.compare(pos, 3, "and") == 0) {
        pos += 3;
        continue;
      }
      if (input.compare(pos, 2, "&&") == 0) {
        pos += 2;
        continue;
      }
      if (input.compare(pos, 3, "\xe2\x88\xa7") == 0) {
        pos += 3;
        continue;
      }
      break;
    }
  };

  while (true) {
    skip_separators();
    if (pos >= input.size()) break;
    if (input[pos] != '(') {
      return Status::ParseError("expected '(' starting a query term" +
                                AtOffset(pos) + ", got " + TokenAt(input, pos));
    }
    const size_t term_start = pos;
    ++pos;
    // The context part runs to the first top-level comma. Quotes may contain
    // commas; respect them.
    const size_t context_start = pos;
    std::string context_text;
    bool in_quotes = false;
    while (pos < input.size() && (in_quotes || input[pos] != ',')) {
      if (input[pos] == '"') in_quotes = !in_quotes;
      context_text.push_back(input[pos++]);
    }
    if (pos >= input.size()) {
      return Status::ParseError(
          "expected ',' inside the query term starting" + AtOffset(term_start) +
          ", got " + TokenAt(input, pos));
    }
    ++pos;  // consume ','
    const size_t search_start = pos;
    std::string search_text;
    int parens = 0;
    in_quotes = false;
    while (pos < input.size() && (in_quotes || parens > 0 || input[pos] != ')')) {
      char c = input[pos];
      if (c == '"') in_quotes = !in_quotes;
      if (!in_quotes && c == '(') ++parens;
      if (!in_quotes && c == ')') --parens;
      search_text.push_back(c);
      ++pos;
    }
    if (pos >= input.size()) {
      return Status::ParseError(
          "expected ')' closing the query term starting" + AtOffset(term_start) +
          ", got " + TokenAt(input, pos));
    }
    ++pos;  // consume ')'

    // Context strings may be quoted; strip one level of quotes.
    std::string ctx(StripWhitespace(context_text));
    if (ctx.size() >= 2 && ctx.front() == '"' && ctx.back() == '"') {
      ctx = ctx.substr(1, ctx.size() - 2);
    }
    auto spec = ContextSpec::Parse(ctx);
    if (!spec.ok()) {
      return Status::ParseError("in the context starting" +
                                AtOffset(context_start) + ": " +
                                spec.status().message());
    }
    auto expr = text::ParseTextExpr(search_text);
    if (!expr.ok()) {
      // ParseTextExpr offsets are relative to the search substring; anchor
      // the message to the term's search part within `input`.
      return Status::ParseError("in the search query starting" +
                                AtOffset(search_start) + ": " +
                                expr.status().message());
    }
    query.terms.emplace_back(std::move(spec).value(), std::move(expr).value());
  }
  if (query.terms.empty()) {
    return Status::InvalidArgument("query contains no terms");
  }
  return query;
}

}  // namespace seda::query
