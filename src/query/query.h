#ifndef SEDA_QUERY_QUERY_H_
#define SEDA_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/path_dictionary.h"
#include "text/text_expr.h"

namespace seda::query {

/// The context component of a query term (paper Definition 3): empty, a full
/// root-to-leaf path, a tag-name keyword (wildcards allowed), or a
/// disjunction of those.
class ContextSpec {
 public:
  struct Alternative {
    bool is_path = false;  ///< true: root-to-leaf path; false: tag pattern
    std::string text;
  };

  ContextSpec() = default;

  /// Parses "trade_country", "/country/economy/GDP", "a | /b/c", "*" / "".
  /// An empty alternative between '|' separators ("a | | b") is rejected with
  /// InvalidArgument instead of being silently dropped; a '*' alternative
  /// inside a disjunction makes the whole spec unrestricted (union
  /// semantics).
  static Result<ContextSpec> Parse(const std::string& text);

  /// Unrestricted context ("*" or empty).
  bool unrestricted() const { return alternatives_.empty(); }

  const std::vector<Alternative>& alternatives() const { return alternatives_; }

  /// Adds one alternative (used by query refinement, §5: the user picks a
  /// subset of contexts and the term is restricted to them).
  void AddPath(const std::string& path);
  void AddTagPattern(const std::string& pattern);

  /// Definition 3 satisfaction: path match or node-name (last tag) match.
  bool Matches(const std::string& path, const std::string& last_tag) const;

  /// Resolves to the set of path ids this context admits, or all paths when
  /// unrestricted.
  std::vector<store::PathId> ResolvePathIds(const store::PathDictionary& dict) const;

  std::string ToString() const;

 private:
  std::vector<Alternative> alternatives_;
};

/// One query term: (context, search_query).
struct QueryTerm {
  ContextSpec context;
  std::unique_ptr<text::TextExpr> search;

  QueryTerm() = default;
  QueryTerm(ContextSpec ctx, std::unique_ptr<text::TextExpr> expr)
      : context(std::move(ctx)), search(std::move(expr)) {}
  QueryTerm(const QueryTerm& other)
      : context(other.context),
        search(other.search ? other.search->Clone() : nullptr) {}
  QueryTerm& operator=(const QueryTerm& other) {
    context = other.context;
    search = other.search ? other.search->Clone() : nullptr;
    return *this;
  }
  QueryTerm(QueryTerm&&) = default;
  QueryTerm& operator=(QueryTerm&&) = default;

  std::string ToString() const;
};

/// A SEDA query: a conjunction of query terms (Definition 4). The result is
/// the set of m-tuples of nodes, one node per term, that are connected in the
/// data graph.
struct Query {
  std::vector<QueryTerm> terms;

  std::string ToString() const;
};

/// Parses the paper's surface syntax:
///   (context, search) ∧ (context, search) ...
/// "AND", "&&", "∧" and juxtaposition all separate terms. The context part
/// may be '*', a tag pattern, a /root/to/leaf path, or alternatives joined
/// with '|'. The search part is a full-text expression (quotes optional for
/// single keywords); '*' means any content.
///
/// Example: (*, "United States") AND (trade_country, *) AND (percentage, *)
///
/// Parse failures are ParseError/InvalidArgument statuses that name the byte
/// offset of the failure in `input` and the offending token, so a client
/// (e.g. one speaking the api wire format) can point at the exact position.
Result<Query> ParseQuery(const std::string& input);

}  // namespace seda::query

#endif  // SEDA_QUERY_QUERY_H_
