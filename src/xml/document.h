#ifndef SEDA_XML_DOCUMENT_H_
#define SEDA_XML_DOCUMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <cstdint>

#include "xml/dewey.h"

namespace seda::xml {

/// Node kinds in the SEDA data model. Per the paper (§3, footnote 6),
/// attributes are treated as a special case of children of their element.
enum class NodeKind {
  kElement,
  kAttribute,
  kText,
};

/// Maximum element nesting depth the parser accepts and the persistence
/// decoder reproduces. Both sides recurse per level, so a shared bound keeps
/// "parses fine" and "loads fine" the same set of documents (and keeps a
/// crafted snapshot image from riding the recursion into a stack overflow).
inline constexpr uint32_t kMaxDocumentDepth = 512;

/// A node of a parsed XML document. Owned by its Document; children are owned
/// by their parent node. Navigation pointers are raw (non-owning).
class Node {
 public:
  Node(NodeKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  NodeKind kind() const { return kind_; }
  /// Element/attribute name; for text nodes this is "#text".
  const std::string& name() const { return name_; }
  /// Text content of a text node, or the attribute value.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  const DeweyId& dewey() const { return dewey_; }
  Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }

  /// Appends a child and returns a pointer to it (ownership retained here).
  Node* AddChild(std::unique_ptr<Node> child);

  /// Pre-sizes the child vector (persistence load hook: the image stores
  /// each node's child count ahead of its subtree).
  void ReserveChildren(size_t count) { children_.reserve(count); }

  /// Convenience: append an element child with the given name.
  Node* AddElement(const std::string& name);
  /// Convenience: append an attribute child name="value".
  Node* AddAttribute(const std::string& name, const std::string& value);
  /// Convenience: append a text child.
  Node* AddText(const std::string& text);

  /// First child element with the given name, or nullptr.
  Node* FindChild(const std::string& name) const;

  /// Concatenation of all descendant text (the paper's content(n), §3).
  std::string ContentString() const;

  /// Root-to-this label path, e.g. "/country/economy/GDP" (context(n), §3).
  /// Attribute steps use the "@name" convention.
  std::string ContextPath() const;

  /// Assigns Dewey IDs to this subtree, treating this node as having `id`.
  void AssignDewey(const DeweyId& id);

 private:
  NodeKind kind_;
  std::string name_;
  std::string text_;
  DeweyId dewey_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed XML document: a root element plus a document name used by the
/// store and by cross-document (value-based / IDREF) edge resolution.
class Document {
 public:
  Document() = default;
  explicit Document(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Node* root() const { return root_.get(); }

  /// Installs the root element and assigns Dewey IDs (root = "1").
  void SetRoot(std::unique_ptr<Node> root);

  /// Persistence hook: installs a root whose subtree already carries correct
  /// Dewey IDs (a top-down AddChild build numbers as it goes), skipping
  /// SetRoot's full renumbering pass. The root must hold Dewey "1".
  void AdoptRoot(std::unique_ptr<Node> root) { root_ = std::move(root); }

  /// Creates a root element with the given tag and returns it.
  Node* CreateRoot(const std::string& tag);

  /// Finds the node with the exact Dewey ID, or nullptr. O(depth).
  Node* FindByDewey(const DeweyId& id) const;

  /// Visits every node (pre-order).
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    if (root_) VisitPreOrder(root_.get(), fn);
  }

  /// Number of nodes (elements + attributes + text) in the document.
  size_t CountNodes() const;

  /// Re-assigns Dewey IDs over the whole tree; call after structural edits.
  void Renumber();

 private:
  template <typename Fn>
  static void VisitPreOrder(Node* node, Fn&& fn) {
    fn(node);
    for (const auto& child : node->children()) {
      VisitPreOrder(child.get(), fn);
    }
  }

  std::string name_;
  std::unique_ptr<Node> root_;
};

}  // namespace seda::xml

#endif  // SEDA_XML_DOCUMENT_H_
