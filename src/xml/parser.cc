#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace seda::xml {

namespace {

/// Recursive-descent scanner over the raw XML text.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  Status ParseInto(Document* doc) {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    doc->SetRoot(std::move(root).value());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing content after document element at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    pos_ = found == std::string_view::npos ? input_.size() : found + terminator.size();
  }

  /// Skips XML declaration, DOCTYPE, comments, and PIs before the root.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (Match("<?")) {
        SkipUntil("?>");
      } else if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<!DOCTYPE")) {
        // Skip to matching '>' accounting for an internal subset [...].
        int bracket = 0;
        while (!AtEnd()) {
          char c = input_[pos_++];
          if (c == '[') ++bracket;
          if (c == ']') --bracket;
          if (c == '>' && bracket <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  /// Skips comments/PIs/whitespace after the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Status::ParseError("expected name at offset " + std::to_string(pos_));
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError("expected quoted attribute value at offset " +
                                std::to_string(pos_));
    }
    char quote = Peek();
    ++pos_;
    std::string raw;
    while (!AtEnd() && Peek() != quote) raw.push_back(input_[pos_++]);
    if (AtEnd()) return Status::ParseError("unterminated attribute value");
    ++pos_;  // closing quote
    return DecodeEntities(raw);
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        uint32_t code = 0;
        bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        for (size_t j = hex ? 2 : 1; j < entity.size(); ++j) {
          char c = entity[j];
          uint32_t digit;
          if (c >= '0' && c <= '9') {
            digit = static_cast<uint32_t>(c - '0');
          } else if (hex && c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a' + 10);
          } else if (hex && c >= 'A' && c <= 'F') {
            digit = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            return Status::ParseError("bad character reference &" +
                                      std::string(entity) + ";");
          }
          code = code * (hex ? 16 : 10) + digit;
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Status::ParseError("unknown entity &" + std::string(entity) + ";");
      }
      i = semi;
    }
    return out;
  }

  Result<std::unique_ptr<Node>> ParseElement() { return ParseElement(1); }

  Result<std::unique_ptr<Node>> ParseElement(uint32_t depth) {
    if (depth > kMaxDocumentDepth) {
      return Status::ParseError(
          "document nested deeper than " + std::to_string(kMaxDocumentDepth) +
          " elements");
    }
    SkipWhitespace();
    if (!Match("<")) {
      return Status::ParseError("expected '<' at offset " + std::to_string(pos_));
    }
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto element = std::make_unique<Node>(NodeKind::kElement, name.value());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unterminated start tag <" + name.value());
      if (Peek() == '>' || Peek() == '/') break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (!Match("=")) {
        return Status::ParseError("expected '=' after attribute " + attr_name.value());
      }
      SkipWhitespace();
      auto attr_value = ParseAttributeValue();
      if (!attr_value.ok()) return attr_value.status();
      element->AddAttribute(attr_name.value(), attr_value.value());
    }

    if (Match("/>")) return element;
    if (!Match(">")) {
      return Status::ParseError("expected '>' closing start tag <" + name.value());
    }

    // Content.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      auto decoded = DecodeEntities(pending_text);
      if (!decoded.ok()) return decoded.status();
      std::string_view stripped = StripWhitespace(decoded.value());
      if (!stripped.empty()) element->AddText(std::string(stripped));
      pending_text.clear();
      return Status::OK();
    };

    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unexpected end of input inside <" + name.value() + ">");
      }
      if (Match("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (Match("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        std::string_view cdata = input_.substr(pos_, end - pos_);
        if (!cdata.empty()) element->AddText(std::string(cdata));
        pos_ = end + 3;
        continue;
      }
      if (Match("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (input_.substr(pos_, 2) == "</") {
        SEDA_RETURN_IF_ERROR(flush_text());
        pos_ += 2;
        auto close_name = ParseName();
        if (!close_name.ok()) return close_name.status();
        if (close_name.value() != name.value()) {
          return Status::ParseError("mismatched close tag </" + close_name.value() +
                                    "> for <" + name.value() + ">");
        }
        SkipWhitespace();
        if (!Match(">")) return Status::ParseError("expected '>' in close tag");
        return element;
      }
      if (Peek() == '<') {
        SEDA_RETURN_IF_ERROR(flush_text());
        auto child = ParseElement(depth + 1);
        if (!child.ok()) return child.status();
        element->AddChild(std::move(child).value());
        continue;
      }
      pending_text.push_back(input_[pos_++]);
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void SerializeNodeImpl(const Node& node, int indent, int depth, std::string* out) {
  std::string pad = indent >= 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                                : std::string();
  const char* newline = indent >= 0 ? "\n" : "";
  if (node.kind() == NodeKind::kText) {
    *out += pad + EscapeText(node.text()) + newline;
    return;
  }
  // kAttribute handled inline by the element case; standalone attribute
  // serialization renders as name="value".
  if (node.kind() == NodeKind::kAttribute) {
    *out += pad + node.name() + "=\"" + EscapeText(node.text()) + "\"" + newline;
    return;
  }
  std::string open = pad + "<" + node.name();
  std::vector<const Node*> content;
  for (const auto& child : node.children()) {
    if (child->kind() == NodeKind::kAttribute) {
      open += " " + child->name() + "=\"" + EscapeText(child->text()) + "\"";
    } else {
      content.push_back(child.get());
    }
  }
  if (content.empty()) {
    *out += open + "/>" + newline;
    return;
  }
  // Text-only content renders inline (<a>text</a>), which keeps
  // serialize->parse->serialize a fixpoint: the parser coalesces adjacent
  // character data into one text node.
  bool text_only = true;
  for (const Node* child : content) {
    if (child->kind() != NodeKind::kText) {
      text_only = false;
      break;
    }
  }
  if (text_only) {
    std::string joined;
    for (const Node* child : content) {
      if (!joined.empty()) joined += ' ';
      joined += child->text();
    }
    *out += open + ">" + EscapeText(joined) + "</" + node.name() + ">" + newline;
    return;
  }
  *out += open + ">" + newline;
  for (const Node* child : content) {
    SerializeNodeImpl(*child, indent, depth + 1, out);
  }
  *out += pad + "</" + node.name() + ">" + newline;
}

}  // namespace

Result<std::unique_ptr<Document>> Parser::Parse(std::string_view input,
                                                std::string doc_name) {
  auto doc = std::make_unique<Document>(std::move(doc_name));
  Scanner scanner(input);
  Status status = scanner.ParseInto(doc.get());
  if (!status.ok()) return status;
  return doc;
}

Result<std::unique_ptr<Document>> Parser::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), path);
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Serialize(const Document& doc, int indent) {
  if (doc.root() == nullptr) return "";
  return SerializeNode(*doc.root(), indent);
}

std::string SerializeNode(const Node& node, int indent) {
  std::string out;
  SerializeNodeImpl(node, indent, 0, &out);
  return out;
}

}  // namespace seda::xml
