#ifndef SEDA_XML_PARSER_H_
#define SEDA_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace seda::xml {

/// From-scratch, dependency-free XML parser covering the subset SEDA needs:
/// elements, attributes, character data, entity references (&amp; &lt; &gt;
/// &quot; &apos; and numeric), comments, CDATA sections, processing
/// instructions, and an optional XML declaration. Namespaces are kept as
/// plain prefixed names (the paper's datasets do not rely on namespace
/// semantics). DTDs are skipped, not validated.
///
/// Whitespace-only text between elements is dropped; all other character data
/// becomes text nodes.
class Parser {
 public:
  /// Parses `input` into a Document named `doc_name`.
  static Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                                 std::string doc_name);

  /// Reads and parses a file from disk.
  static Result<std::unique_ptr<Document>> ParseFile(const std::string& path);
};

/// Serializes a document (or subtree) back to XML text.
/// `indent` < 0 emits a compact single-line form; otherwise pretty-prints
/// with the given indent width.
std::string Serialize(const Document& doc, int indent = 2);
std::string SerializeNode(const Node& node, int indent = 2);

/// Escapes character data for XML output (&, <, >, ", ').
std::string EscapeText(std::string_view text);

}  // namespace seda::xml

#endif  // SEDA_XML_PARSER_H_
