#include "xml/dewey.h"

#include <algorithm>

#include "common/strings.h"

namespace seda::xml {

DeweyId DeweyId::Parse(const std::string& text) {
  std::vector<uint32_t> parts;
  if (text.empty()) return DeweyId();
  for (const std::string& piece : Split(text, '.')) {
    if (piece.empty()) return DeweyId();
    uint64_t value = 0;
    for (char c : piece) {
      if (c < '0' || c > '9') return DeweyId();
      value = value * 10 + static_cast<uint64_t>(c - '0');
      // Components above 2^32-1 would silently wrap to a bogus but
      // valid-looking id; reject the whole string instead.
      if (value > 0xFFFFFFFFull) return DeweyId();
    }
    parts.push_back(static_cast<uint32_t>(value));
  }
  return DeweyId(std::move(parts));
}

DeweyId DeweyId::Child(uint32_t index) const {
  std::vector<uint32_t> parts;
  parts.reserve(components_.size() + 1);  // one exact-size allocation
  parts.insert(parts.end(), components_.begin(), components_.end());
  parts.push_back(index);
  return DeweyId(std::move(parts));
}

DeweyId DeweyId::Parent() const {
  if (components_.empty()) return DeweyId();
  std::vector<uint32_t> parts(components_.begin(), components_.end() - 1);
  return DeweyId(std::move(parts));
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  if (components_.size() >= other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(), other.components_.begin());
}

bool DeweyId::IsAncestorOrSelf(const DeweyId& other) const {
  return *this == other || IsAncestorOf(other);
}

bool DeweyId::operator<(const DeweyId& other) const {
  return std::lexicographical_compare(components_.begin(), components_.end(),
                                      other.components_.begin(),
                                      other.components_.end());
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

uint64_t DeweyId::Hash() const {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t c : components_) {
    h = HashCombine(h, c + 1);
  }
  return h;
}

size_t CommonPrefixLength(const DeweyId& a, const DeweyId& b) {
  const auto& ca = a.components();
  const auto& cb = b.components();
  size_t n = std::min(ca.size(), cb.size());
  size_t i = 0;
  while (i < n && ca[i] == cb[i]) ++i;
  return i;
}

size_t TreeDistance(const DeweyId& a, const DeweyId& b) {
  size_t lca = CommonPrefixLength(a, b);
  return (a.depth() - lca) + (b.depth() - lca);
}

}  // namespace seda::xml
