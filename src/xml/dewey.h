#ifndef SEDA_XML_DEWEY_H_
#define SEDA_XML_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seda::xml {

/// Dewey ID (Tatarinov et al., SIGMOD 2002): the position path of a node from
/// the document root. The root element has Dewey "1"; its i-th child (1-based,
/// counting elements and text nodes in document order) appends ".i".
///
/// Dewey IDs give document order by lexicographic comparison of components and
/// make ancestor/descendant tests a prefix check — both properties are load-
/// bearing for the holistic twig join (paper §7) which consumes node streams
/// "in Dewey ID order".
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// Parses "1.2.2.1" into a DeweyId; returns an empty id for an empty string.
  static DeweyId Parse(const std::string& text);

  const std::vector<uint32_t>& components() const { return components_; }
  bool empty() const { return components_.empty(); }
  size_t depth() const { return components_.size(); }

  /// Returns the Dewey ID of this node's `index`-th child (1-based).
  DeweyId Child(uint32_t index) const;

  /// Returns the parent's Dewey ID; the root's parent is the empty id.
  DeweyId Parent() const;

  /// True iff this id is a strict ancestor of `other` (prefix, not equal).
  bool IsAncestorOf(const DeweyId& other) const;

  /// True iff this id is `other` or a strict ancestor of it.
  bool IsAncestorOrSelf(const DeweyId& other) const;

  /// Document-order comparison: lexicographic on components, with a prefix
  /// (ancestor) ordering before its extensions.
  bool operator<(const DeweyId& other) const;
  bool operator==(const DeweyId& other) const { return components_ == other.components_; }
  bool operator!=(const DeweyId& other) const { return !(*this == other); }

  /// Renders as dot-separated components: "1.2.2.1".
  std::string ToString() const;

  /// Stable hash for unordered containers.
  uint64_t Hash() const;

 private:
  std::vector<uint32_t> components_;
};

/// Number of shared leading components; the lowest common ancestor of two
/// nodes in the same document sits at this depth.
size_t CommonPrefixLength(const DeweyId& a, const DeweyId& b);

/// Tree distance between two nodes of the same document: edges from `a` up to
/// the LCA plus edges down to `b`. Used by the compactness score (paper §4).
size_t TreeDistance(const DeweyId& a, const DeweyId& b);

}  // namespace seda::xml

#endif  // SEDA_XML_DEWEY_H_
