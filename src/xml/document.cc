#include "xml/document.h"

namespace seda::xml {

Node* Node::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  Node* added = children_.back().get();
  added->AssignDewey(dewey_.Child(static_cast<uint32_t>(children_.size())));
  return added;
}

Node* Node::AddElement(const std::string& name) {
  return AddChild(std::make_unique<Node>(NodeKind::kElement, name));
}

Node* Node::AddAttribute(const std::string& name, const std::string& value) {
  Node* attr = AddChild(std::make_unique<Node>(NodeKind::kAttribute, name));
  attr->set_text(value);
  return attr;
}

Node* Node::AddText(const std::string& text) {
  Node* node = AddChild(std::make_unique<Node>(NodeKind::kText, "#text"));
  node->set_text(text);
  return node;
}

Node* Node::FindChild(const std::string& name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::string Node::ContentString() const {
  if (kind_ == NodeKind::kText || kind_ == NodeKind::kAttribute) return text_;
  std::string out;
  for (const auto& child : children_) {
    std::string piece = child->ContentString();
    if (piece.empty()) continue;
    if (!out.empty()) out += ' ';
    out += piece;
  }
  return out;
}

std::string Node::ContextPath() const {
  if (kind_ == NodeKind::kText) {
    // Text nodes take the context of their parent element.
    return parent_ != nullptr ? parent_->ContextPath() : "";
  }
  std::string out = parent_ != nullptr ? parent_->ContextPath() : "";
  out += '/';
  if (kind_ == NodeKind::kAttribute) out += '@';
  out += name_;
  return out;
}

void Node::AssignDewey(const DeweyId& id) {
  dewey_ = id;
  for (size_t i = 0; i < children_.size(); ++i) {
    children_[i]->AssignDewey(id.Child(static_cast<uint32_t>(i + 1)));
  }
}

void Document::SetRoot(std::unique_ptr<Node> root) {
  root_ = std::move(root);
  if (root_) root_->AssignDewey(DeweyId({1}));
}

Node* Document::CreateRoot(const std::string& tag) {
  SetRoot(std::make_unique<Node>(NodeKind::kElement, tag));
  return root_.get();
}

Node* Document::FindByDewey(const DeweyId& id) const {
  const auto& comps = id.components();
  if (comps.empty() || comps[0] != 1 || !root_) return nullptr;
  Node* node = root_.get();
  for (size_t depth = 1; depth < comps.size(); ++depth) {
    uint32_t index = comps[depth];
    if (index == 0 || index > node->children().size()) return nullptr;
    node = node->children()[index - 1].get();
  }
  return node;
}

size_t Document::CountNodes() const {
  size_t count = 0;
  ForEachNode([&count](Node*) { ++count; });
  return count;
}

void Document::Renumber() {
  if (root_) root_->AssignDewey(DeweyId({1}));
}

}  // namespace seda::xml
