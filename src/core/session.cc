#include "core/session.h"

namespace seda::core {

Result<SearchResponse> Session::Search(const query::Query& query) {
  auto response = snapshot_->Search(query);
  if (!response.ok()) return response.status();
  current_query_ = query;
  last_response_ = response.value();
  refinement_history_.clear();
  ++rounds_;
  return response;
}

Result<SearchResponse> Session::Search(const std::string& query_text) {
  auto query = snapshot_->Parse(query_text);
  if (!query.ok()) return query.status();
  return Search(query.value());
}

Result<SearchResponse> Session::RefineContexts(
    const std::vector<std::vector<std::string>>& chosen_paths) {
  if (!current_query_.has_value()) {
    return Status::FailedPrecondition(
        "no query in this session; call Search() before RefineContexts()");
  }
  auto refined = Snapshot::RefineContexts(*current_query_, chosen_paths);
  if (!refined.ok()) return refined.status();

  auto response = snapshot_->Search(refined.value());
  if (!response.ok()) return response.status();
  current_query_ = std::move(refined).value();
  last_response_ = response.value();
  refinement_history_.push_back(chosen_paths);
  ++rounds_;
  return response;
}

Result<twig::CompleteResult> Session::CompleteResults(
    const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections) const {
  if (!current_query_.has_value()) {
    return Status::FailedPrecondition(
        "no query in this session; call Search() (or SetQuery) first");
  }
  return snapshot_->CompleteResults(*current_query_, term_paths, connections);
}

Result<cube::StarSchema> Session::BuildCube(
    const twig::CompleteResult& result,
    const cube::CubeBuilder::Options& options) const {
  if (catalog_ == nullptr) {
    return Status::FailedPrecondition(
        "this session was created without a cube catalog");
  }
  return snapshot_->BuildCube(result, *catalog_, options);
}

}  // namespace seda::core
