#include "core/session.h"

#include "obs/trace.h"

namespace seda::core {

Result<SearchResponse> Session::Search(const query::Query& query) {
  return Search(query, snapshot_->options().topk);
}

Result<SearchResponse> Session::Search(const query::Query& query,
                                       const topk::TopKOptions& topk_options) {
  auto response = snapshot_->Search(query, topk_options);
  if (!response.ok()) return response.status();
  current_query_ = query;
  last_response_ = response.value();
  refinement_history_.clear();
  ++rounds_;
  return response;
}

Result<SearchResponse> Session::Search(const std::string& query_text) {
  return Search(query_text, snapshot_->options().topk);
}

Result<SearchResponse> Session::Search(const std::string& query_text,
                                       const topk::TopKOptions& topk_options) {
  obs::ScopedSpan parse_span(topk_options.trace, "parse");
  auto query = snapshot_->Parse(query_text);
  parse_span.End();
  if (!query.ok()) return query.status();
  return Search(query.value(), topk_options);
}

Result<SearchResponse> Session::RefineContexts(
    const std::vector<std::vector<std::string>>& chosen_paths) {
  return RefineContexts(chosen_paths, snapshot_->options().topk);
}

Result<SearchResponse> Session::RefineContexts(
    const std::vector<std::vector<std::string>>& chosen_paths,
    const topk::TopKOptions& topk_options) {
  if (!current_query_.has_value()) {
    return Status::FailedPrecondition(
        "no query in this session; call Search() before RefineContexts()");
  }
  // Validate the pick shape here, before the rewrite, so the caller gets the
  // term arity error even when the query itself would fail later anyway.
  if (chosen_paths.size() != current_query_->terms.size()) {
    return Status::InvalidArgument(
        "one context choice list per query term required: current query has " +
        std::to_string(current_query_->terms.size()) + " term(s) but " +
        std::to_string(chosen_paths.size()) + " list(s) were given");
  }
  auto refined = Snapshot::RefineContexts(*current_query_, chosen_paths);
  if (!refined.ok()) return refined.status();

  auto response = snapshot_->Search(refined.value(), topk_options);
  if (!response.ok()) return response.status();
  current_query_ = std::move(refined).value();
  last_response_ = response.value();
  refinement_history_.push_back(chosen_paths);
  ++rounds_;
  return response;
}

Result<twig::CompleteResult> Session::CompleteResults(
    const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections,
    const twig::ExecuteOptions& options) const {
  if (!current_query_.has_value()) {
    return Status::FailedPrecondition(
        "no query in this session; call Search() (or SetQuery) first");
  }
  return snapshot_->CompleteResults(*current_query_, term_paths, connections,
                                    options);
}

Result<cube::StarSchema> Session::BuildCube(
    const twig::CompleteResult& result,
    const cube::CubeBuilder::Options& options) const {
  if (catalog_ == nullptr) {
    return Status::FailedPrecondition(
        "this session was created without a cube catalog");
  }
  return snapshot_->BuildCube(result, *catalog_, options);
}

}  // namespace seda::core
