#ifndef SEDA_CORE_SNAPSHOT_H_
#define SEDA_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "column/column_store.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "persist/reader.h"
#include "persist/writer.h"
#include "cube/cube_builder.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "olap/olap.h"
#include "query/query.h"
#include "store/document_store.h"
#include "summary/connection_summary.h"
#include "summary/context_summary.h"
#include "text/inverted_index.h"
#include "topk/topk.h"
#include "twig/twig.h"

namespace seda::core {

/// Everything SEDA returns for one search interaction (paper Fig. 6): the
/// top-k answers plus the two result summaries driving refinement.
struct SearchResponse {
  std::vector<topk::ScoredTuple> topk;
  summary::ContextSummary contexts;
  summary::ConnectionSummary connections;
  topk::SearchStats stats;
};

/// Configuration of a Seda instance, fixed by the first commit (Finalize())
/// and reused by every later Commit().
struct SedaOptions {
  double dataguide_overlap_threshold = 0.4;  ///< Table 1 uses 40%
  topk::TopKOptions topk;
  bool resolve_idrefs = true;
  bool resolve_xlinks = true;
  /// Worker threads for the commit ingestion pipeline: per-document parsing,
  /// link resolution and inverted-index posting construction fan out across
  /// this many threads. 0 = one per hardware core; 1 = fully inline. Any
  /// value yields byte-identical indexes and dataguides: parallel stages
  /// only produce per-document shards, which are merged in document order.
  size_t num_threads = 0;
  /// Worker threads for query execution: each Search() fans per-document
  /// tuple scoring (ConnectionSize) out across a pool owned by the serving
  /// snapshot. 0 = one per hardware core; 1 = fully inline. Any value
  /// returns byte-identical SearchResponses — scored batches are merged in
  /// enumeration order. Search() stays safe to call concurrently:
  /// ThreadPool::ParallelFor keeps per-call state, so concurrent queries
  /// only contend for workers.
  size_t query_threads = 0;
  /// Value-based PK/FK relationships provided as input (paper §3: "we assume
  /// instances of ... value-based relationships are provided as input").
  struct ValueEdge {
    std::string pk_path;
    std::string fk_path;
    std::string label;
  };
  std::vector<ValueEdge> value_edges;
  /// Commit-time schema-inference thresholds for the columnar projections
  /// (src/column/) the cube layer scans; `columns.enabled = false` turns the
  /// subsystem off and every cube takes the tree walk.
  column::InferenceOptions columns;
};

/// One immutable, atomically-published epoch of the query side: the store
/// view, data graph, inverted index, dataguide summary and top-k searcher a
/// query needs, frozen at commit time. Snapshots are built off to the side
/// by the Seda writer path and swapped in via std::shared_ptr, so readers
/// never block on (and are never torn by) a concurrent Commit(): whoever
/// holds a Snapshot keeps exactly the epoch it pinned, and the epoch is
/// freed when its last holder lets go. All query entry points are const and
/// safe to call from many threads at once.
class Snapshot {
 public:
  /// Builds epoch `epoch` over `store` (ownership taken; the writer hands in
  /// a DocumentStore::Clone so later ingestion never touches this view).
  /// With a `base` snapshot, stages that new documents cannot invalidate are
  /// extended instead of rebuilt: parsed documents are shared through the
  /// store clone, the inverted index merges only the new documents' shards,
  /// and the dataguide summary continues the sequential overlap merge — all
  /// bit-identical to a from-scratch build over the same store. Only link
  /// resolution always rescans, because a new document may carry the id an
  /// old document's IDREF/XLink points at (and value edges may span epochs).
  /// `query_pool` (may be null = inline scoring) is shared across epochs:
  /// the writer owns one pool and every snapshot co-owns it, so commits
  /// don't spawn threads and a Session outliving the writer keeps a working
  /// searcher.
  static std::shared_ptr<const Snapshot> Build(
      std::unique_ptr<store::DocumentStore> store, const SedaOptions& options,
      uint64_t epoch, const Snapshot* base, ThreadPool* ingest_pool,
      std::shared_ptr<ThreadPool> query_pool);

  /// Serializes this epoch to a versioned, checksummed binary image at
  /// `path` (src/persist/ format): options, path dictionary, document trees,
  /// data-graph edge log, inverted index and dataguide summary as aligned,
  /// offset-addressed sections. Load()/Seda::Open() reopen the image without
  /// re-parsing or re-indexing anything and serve byte-identical
  /// SearchResponses. Snapshots are immutable, so Save can run concurrently
  /// with searches and commits.
  Status Save(const std::string& path) const;

  /// Reopens a saved epoch from a validated image: documents materialize in
  /// parallel over `load_pool`, posting lists and dataguides decode straight
  /// out of the mapping, and nothing is re-tokenized or re-resolved —
  /// making reopen O(image size) instead of O(re-ingestion). The loaded
  /// snapshot is a full epoch: it serves queries (scoring fans out over
  /// `query_pool` when given) and can be the base of further Commit()s.
  static Result<std::shared_ptr<const Snapshot>> Load(
      std::shared_ptr<const persist::MappedImage> image, ThreadPool* load_pool,
      std::shared_ptr<ThreadPool> query_pool);
  static Result<std::shared_ptr<const Snapshot>> Load(const std::string& path);

  /// Commit epoch id: 1 for the Finalize() epoch, +1 per Commit().
  uint64_t epoch() const { return epoch_; }
  const SedaOptions& options() const { return options_; }

  const store::DocumentStore& store() const { return *store_; }
  const graph::DataGraph& data_graph() const { return *graph_; }
  const text::InvertedIndex& index() const { return *index_; }
  const dataguide::DataguideCollection& dataguides() const { return *guides_; }
  /// Schema-inferred columnar projections of this epoch (never null; empty
  /// when inference is disabled or nothing qualified).
  const column::ColumnStore& columns() const { return *columns_; }

  /// Parses the paper's query syntax, e.g.
  ///   (*, "United States") AND (trade_country, *) AND (percentage, *)
  Result<query::Query> Parse(const std::string& text) const;

  /// Runs top-k search and computes both summaries (Fig. 6 first stage).
  /// The response's stats carry this snapshot's epoch().
  Result<SearchResponse> Search(const query::Query& query) const;
  Result<SearchResponse> Search(const std::string& query_text) const;

  /// Search with per-request engine options (the api::SedaService path: a
  /// request's deadline_ms / k overrides are layered over this snapshot's
  /// configured TopKOptions without touching the shared epoch state).
  Result<SearchResponse> Search(const query::Query& query,
                                const topk::TopKOptions& topk_options) const;

  /// Context refinement (§5): restricts each term to the chosen context
  /// paths (empty vector = keep the term as is) and returns the refined
  /// query for a new Search round. Pure query rewrite — needs no epoch
  /// state, shared here by Session and the legacy Seda facade.
  static Result<query::Query> RefineContexts(
      const query::Query& query,
      const std::vector<std::vector<std::string>>& chosen_paths);

  /// Computes the complete result set (§7) for terms pinned to single
  /// contexts, honoring the chosen connections. `options.deadline_ms` bounds
  /// the twig join; on expiry the partial result carries deadline_exceeded.
  Result<twig::CompleteResult> CompleteResults(
      const query::Query& query, const std::vector<std::string>& term_paths,
      const std::vector<twig::ChosenConnection>& connections,
      const twig::ExecuteOptions& options = {}) const;

  /// Builds the star schema from a complete result (§7 steps 1-3). The
  /// catalog (user-defined dimensions/facts) lives on the writer side and is
  /// passed in per call.
  Result<cube::StarSchema> BuildCube(
      const twig::CompleteResult& result, const cube::Catalog& catalog,
      const cube::CubeBuilder::Options& options) const;

  /// Convenience: loads the first fact table of a star schema into the OLAP
  /// engine (the paper feeds the tables to an off-the-shelf OLAP tool).
  Result<olap::Cube> ToOlapCube(const cube::StarSchema& schema) const;

  /// Debug validation (src/audit/): walks every component structure of this
  /// epoch and verifies the cross-layer invariants the engine's hot paths
  /// assume. O(collection); meant for tests and the seda_audit CLI, not the
  /// serving path. The image overload additionally checks the persisted
  /// sections this snapshot was loaded from agree with the decoded
  /// structures (section sanity, leading counts, epoch).
  audit::AuditReport Audit() const;
  audit::AuditReport Audit(const persist::MappedImage& image) const;

 private:
  Snapshot() = default;

  uint64_t epoch_ = 0;
  SedaOptions options_;
  std::unique_ptr<store::DocumentStore> store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<dataguide::DataguideCollection> guides_;
  std::unique_ptr<column::ColumnStore> columns_;
  /// Query-time pool (tuple scoring); co-owned with the writer and every
  /// other live epoch, so a Session that outlives the writer keeps a working
  /// searcher. Outlives searcher_, which borrows it.
  std::shared_ptr<ThreadPool> query_pool_;
  std::unique_ptr<topk::TopKSearcher> searcher_;
};

/// SedaOptions codec for the image's options section, shared by
/// Snapshot::Save/Load and Seda::Open (which must restore the options before
/// it can size the thread pools).
void WriteSedaOptions(persist::ImageWriter* writer, const SedaOptions& options);
Result<SedaOptions> ReadSedaOptions(const persist::MappedImage& image);

}  // namespace seda::core

#endif  // SEDA_CORE_SNAPSHOT_H_
