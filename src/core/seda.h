#ifndef SEDA_CORE_SEDA_H_
#define SEDA_CORE_SEDA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "cube/cube_builder.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "olap/olap.h"
#include "query/query.h"
#include "store/document_store.h"
#include "summary/connection_summary.h"
#include "summary/context_summary.h"
#include "text/inverted_index.h"
#include "topk/topk.h"
#include "twig/twig.h"

namespace seda::core {

/// Everything SEDA returns for one search interaction (paper Fig. 6): the
/// top-k answers plus the two result summaries driving refinement.
struct SearchResponse {
  std::vector<topk::ScoredTuple> topk;
  summary::ContextSummary contexts;
  summary::ConnectionSummary connections;
  topk::SearchStats stats;
};

/// Configuration of a Seda instance.
struct SedaOptions {
  double dataguide_overlap_threshold = 0.4;  ///< Table 1 uses 40%
  topk::TopKOptions topk;
  bool resolve_idrefs = true;
  bool resolve_xlinks = true;
  /// Worker threads for the Finalize() ingestion pipeline: per-document
  /// parsing, link resolution and inverted-index posting construction fan out
  /// across this many threads. 0 = one per hardware core; 1 = fully inline.
  /// Any value yields byte-identical indexes and dataguides: parallel stages
  /// only produce per-document shards, which are merged in document order.
  size_t num_threads = 0;
  /// Worker threads for query execution: each Search() fans per-document
  /// tuple scoring (ConnectionSize) out across a pool kept alive for the
  /// instance's lifetime. 0 = one per hardware core; 1 = fully inline. Any
  /// value returns byte-identical SearchResponses — scored batches are
  /// merged in enumeration order. Search() stays safe to call concurrently:
  /// ThreadPool::ParallelFor keeps per-call state, so concurrent queries
  /// only contend for workers.
  size_t query_threads = 0;
  /// Value-based PK/FK relationships provided as input (paper §3: "we assume
  /// instances of ... value-based relationships are provided as input").
  struct ValueEdge {
    std::string pk_path;
    std::string fk_path;
    std::string label;
  };
  std::vector<ValueEdge> value_edges;
};

/// The SEDA system facade: wires storage, indexing, the execution engine and
/// the cube processor into the Figure 6 control flow:
///
///   AddXml/AddDocument*  ->  Finalize()
///   Search(query)        ->  top-k + context & connection summaries
///   (user picks contexts)    RefineContexts(query, picks) -> new Search
///   (user picks connections) CompleteResults(...)         -> full R(q)
///   BuildCube(...)       ->  star schema -> olap::Cube
class Seda {
 public:
  Seda() : store_(std::make_unique<store::DocumentStore>()) {}

  /// Storage is mutable until Finalize() builds the indexes.
  store::DocumentStore* mutable_store() { return store_.get(); }

  /// Queues an XML document for ingestion; parsing and Dewey assignment are
  /// deferred to Finalize(), where queued documents parse in parallel.
  /// Returns the DocId the document will receive (ids are assigned in queue
  /// order after everything already in the store), or FailedPrecondition
  /// after Finalize() — the queue can never be ingested then. A malformed
  /// document surfaces as a ParseError from Finalize(). Eager loading via
  /// mutable_store()->AddXml() remains available, but all eager loads must
  /// happen before the first AddXml() — Finalize() rejects the interleaving
  /// with FailedPrecondition, since it would invalidate the promised ids.
  Result<store::DocId> AddXml(std::string xml_text, std::string doc_name);

  /// Builds the data graph, full-text index and dataguide summary. Call once
  /// after loading documents; afterwards the instance is immutable and all
  /// query entry points become available.
  Status Finalize(const SedaOptions& options);
  Status Finalize() { return Finalize(SedaOptions{}); }

  bool finalized() const { return index_ != nullptr; }

  const store::DocumentStore& store() const { return *store_; }
  const graph::DataGraph& data_graph() const { return *graph_; }
  const text::InvertedIndex& index() const { return *index_; }
  const dataguide::DataguideCollection& dataguides() const { return *guides_; }
  cube::Catalog* mutable_catalog() { return &catalog_; }
  const cube::Catalog& catalog() const { return catalog_; }

  /// Parses the paper's query syntax, e.g.
  ///   (*, "United States") AND (trade_country, *) AND (percentage, *)
  Result<query::Query> Parse(const std::string& text) const;

  /// Runs top-k search and computes both summaries (Fig. 6 first stage).
  Result<SearchResponse> Search(const query::Query& query) const;
  Result<SearchResponse> Search(const std::string& query_text) const;

  /// Context refinement (§5): restricts each term to the chosen context
  /// paths (empty vector = keep the term unrestricted) and returns the
  /// refined query for a new Search round.
  Result<query::Query> RefineContexts(
      const query::Query& query,
      const std::vector<std::vector<std::string>>& chosen_paths) const;

  /// Computes the complete result set (§7) for terms pinned to single
  /// contexts, honoring the chosen connections.
  Result<twig::CompleteResult> CompleteResults(
      const query::Query& query, const std::vector<std::string>& term_paths,
      const std::vector<twig::ChosenConnection>& connections) const;

  /// Builds the star schema from a complete result (§7 steps 1-3).
  Result<cube::StarSchema> BuildCube(const twig::CompleteResult& result,
                                     const cube::CubeBuilder::Options& options) const;
  Result<cube::StarSchema> BuildCube(const twig::CompleteResult& result) const {
    return BuildCube(result, cube::CubeBuilder::Options{});
  }

  /// Convenience: loads the first fact table of a star schema into the OLAP
  /// engine (the paper feeds the tables to an off-the-shelf OLAP tool).
  Result<olap::Cube> ToOlapCube(const cube::StarSchema& schema) const;

 private:
  struct PendingDocument {
    std::string xml_text;
    std::string name;
  };

  /// Stage 1 of Finalize(): parses queued documents in parallel and appends
  /// them to the store in queue order.
  Status IngestPending(ThreadPool* pool);

  std::vector<PendingDocument> pending_docs_;
  /// Store size when the first pending document was queued; AddXml() DocId
  /// promises are relative to it, and IngestPending() verifies it still holds.
  size_t pending_base_ = 0;
  std::unique_ptr<store::DocumentStore> store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<dataguide::DataguideCollection> guides_;
  /// Query-time pool (tuple scoring); outlives searcher_, which borrows it.
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<topk::TopKSearcher> searcher_;
  cube::Catalog catalog_;
  SedaOptions options_;
};

}  // namespace seda::core

#endif  // SEDA_CORE_SEDA_H_
