#ifndef SEDA_CORE_SEDA_H_
#define SEDA_CORE_SEDA_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "core/snapshot.h"
#include "cube/catalog.h"

namespace seda::core {

/// The SEDA system, split into three layers (writer / snapshot / session):
///
///  * **Writer path (this class).** AddXml() queues documents at any time —
///    before or after finalization. Finalize() performs the first Commit();
///    every later Commit() parses what is queued and builds the next epoch,
///    reusing the previous snapshot's work for every stage new documents
///    cannot invalidate (parsed documents are shared, the inverted index and
///    dataguide summary are extended; only link resolution rescans). The new
///    Snapshot is published atomically via std::shared_ptr, so in-flight
///    queries are never blocked or torn. The writer itself is
///    single-threaded: calls that mutate (AddXml, mutable_store, Commit,
///    mutable_catalog) must be externally serialized. Reader threads may
///    freely race with the writer through any call path that pins an epoch —
///    snapshot(), a Session, or the one-shot query shims below; only the raw
///    reference accessors (store()/data_graph()/index()/dataguides()) must
///    not overlap a Commit(), see their note.
///
///  * **Snapshot.** One immutable epoch of everything query-side; see
///    core/snapshot.h.
///
///  * **Session.** A stateful Fig. 6 exploration pinned to one snapshot; see
///    core/session.h. NewSession() pins the current epoch.
///
/// The classic one-shot entry points (Search, RefineContexts,
/// CompleteResults, BuildCube, ToOlapCube) remain as thin shims that create
/// a single-use Session over the current snapshot, so pre-existing call
/// sites compile and behave unchanged:
///
///   AddXml/AddDocument*  ->  Finalize()          (the first commit)
///   Search(query)        ->  top-k + context & connection summaries
///   (user picks contexts)    RefineContexts(query, picks) -> new Search
///   (user picks connections) CompleteResults(...)         -> full R(q)
///   BuildCube(...)       ->  star schema -> olap::Cube
///   AddXml(...) + Commit() -> next epoch, queries keep running meanwhile
class Seda {
 public:
  Seda() : store_(std::make_unique<store::DocumentStore>()) {}

  /// The writer-side staging store. Eager loads (generators, tests) land
  /// here and become queryable at the next Finalize()/Commit(); published
  /// snapshots hold their own immutable clone, so staging mutations never
  /// disturb running queries.
  store::DocumentStore* mutable_store() { return store_.get(); }

  /// Queues an XML document for ingestion; parsing and Dewey assignment are
  /// deferred to the next Finalize()/Commit(), where queued documents parse
  /// in parallel. Legal at any time — after finalization the document joins
  /// the epoch built by the next Commit(). Returns the DocId the document
  /// will receive (ids are assigned in queue order after everything already
  /// staged). A malformed document surfaces as a ParseError from the commit.
  /// Eager loading via mutable_store()->AddXml() remains available, but all
  /// eager loads of a commit cycle must happen before its first AddXml() —
  /// the commit rejects the interleaving with FailedPrecondition, since it
  /// would invalidate the promised ids.
  Result<store::DocId> AddXml(std::string xml_text, std::string doc_name);

  /// Builds the first snapshot epoch (data graph, full-text index, dataguide
  /// summary) and fixes the SedaOptions used by every later Commit(). Call
  /// once; afterwards all query entry points are available and further
  /// ingestion goes through AddXml() + Commit().
  Status Finalize(const SedaOptions& options);
  Status Finalize() { return Finalize(SedaOptions{}); }

  /// Reopens a saved snapshot image (Save()) as this instance's first served
  /// epoch — the persistence counterpart of Finalize(): the image's options
  /// become the instance options, its epoch is served immediately, and
  /// further AddXml() + Commit() build epoch N+1 incrementally on top of the
  /// loaded state, exactly as if this process had built epoch N itself.
  /// Requires a fresh instance (nothing staged, not finalized). Cost is
  /// O(image size): no XML parsing, tokenization, link resolution or
  /// dataguide probing. Many processes may Open() the same image
  /// concurrently — the file is mapped read-only — which is what enables
  /// one-writer/many-reader multi-process serving.
  Status Open(const std::string& path);

  /// Serializes the currently-served epoch to `path` (Snapshot::Save).
  /// Fails before Finalize(). Safe to call while queries run; a concurrent
  /// Commit() simply determines which epoch gets saved.
  Status Save(const std::string& path) const;

  struct CommitOptions {
    /// Rebuild the inverted index and dataguide summary from scratch instead
    /// of extending the previous epoch (results are identical either way;
    /// this is the ablation/bench knob).
    bool force_full_rebuild = false;
  };

  /// What a Commit() did, for logging and the commit-latency bench.
  struct CommitInfo {
    uint64_t epoch = 0;      ///< epoch now being served
    size_t docs_added = 0;   ///< documents new in this epoch
    size_t docs_total = 0;   ///< documents in the epoch
    bool incremental = false;  ///< previous epoch's index/guides were extended
  };

  /// Ingests everything staged since the last commit and atomically
  /// publishes the next snapshot epoch. In-flight Search() calls and pinned
  /// Sessions keep the epoch they started on; new queries see the new one.
  /// With nothing staged this is a cheap no-op returning the current epoch.
  /// Requires Finalize() first (it is the first commit and fixes the
  /// options).
  Result<CommitInfo> Commit(const CommitOptions& options);
  Result<CommitInfo> Commit() { return Commit(CommitOptions{}); }

  bool finalized() const { return snapshot() != nullptr; }

  /// The currently-served epoch (nullptr before Finalize()). Lock-free
  /// atomic load; the returned shared_ptr keeps the epoch alive for as long
  /// as the caller holds it.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Starts a Fig. 6 exploration pinned to the current epoch (and wired to
  /// this instance's cube catalog). Fails before Finalize().
  Result<Session> NewSession() const;

  // --- Legacy facade: shims over the current snapshot -----------------
  // DEPRECATED: the supported public query surface is api::SedaService
  // (src/api/service.h) — plain-data requests/responses with string session
  // ids, per-request deadlines and a JSON wire form; see README's migration
  // table. The one-shot shims below remain for in-process callers and tests
  // (each pins the current snapshot for exactly one call, so they stay
  // correct), but new interactive/serving code should not grow on them:
  // they hand back engine objects full of store references that cannot
  // cross a thread-pool, process or wire boundary.
  //
  // The raw-reference accessors below return references into the currently
  // published epoch. They stay valid until the next Commit() replaces that
  // epoch (which frees it unless a Session or snapshot() shared_ptr still
  // pins it) — like iterator invalidation, and UNLIKE the query shims they
  // must not be called concurrently with a Commit(): the reference could
  // outlive the epoch it points into. Threads racing the writer should hold
  // a Session or snapshot() instead.

  const store::DocumentStore& store() const;
  const graph::DataGraph& data_graph() const;
  const text::InvertedIndex& index() const;
  const dataguide::DataguideCollection& dataguides() const;
  cube::Catalog* mutable_catalog() { return &catalog_; }
  const cube::Catalog& catalog() const { return catalog_; }

  /// Parses the paper's query syntax, e.g.
  ///   (*, "United States") AND (trade_country, *) AND (percentage, *)
  Result<query::Query> Parse(const std::string& text) const;

  /// DEPRECATED (use api::SedaService::Search): one-shot search on the
  /// current epoch via an internal single-use Session. The response's
  /// stats.epoch says which epoch served it.
  Result<SearchResponse> Search(const query::Query& query) const;
  Result<SearchResponse> Search(const std::string& query_text) const;

  /// DEPRECATED (use api::SedaService::Refine): context refinement (§5);
  /// pure query rewrite, see Snapshot::RefineContexts.
  Result<query::Query> RefineContexts(
      const query::Query& query,
      const std::vector<std::vector<std::string>>& chosen_paths) const;

  /// DEPRECATED (use api::SedaService::Complete): complete result set (§7)
  /// on the current epoch.
  Result<twig::CompleteResult> CompleteResults(
      const query::Query& query, const std::vector<std::string>& term_paths,
      const std::vector<twig::ChosenConnection>& connections) const;

  /// DEPRECATED (use api::SedaService::Cube): star schema from a complete
  /// result (§7 steps 1-3).
  Result<cube::StarSchema> BuildCube(
      const twig::CompleteResult& result,
      const cube::CubeBuilder::Options& options) const;
  Result<cube::StarSchema> BuildCube(const twig::CompleteResult& result) const {
    return BuildCube(result, cube::CubeBuilder::Options{});
  }

  /// DEPRECATED (use api::SedaService::Cube with measure/group_dims): loads
  /// the first fact table of a star schema into the OLAP engine.
  Result<olap::Cube> ToOlapCube(const cube::StarSchema& schema) const;

 private:
  struct PendingDocument {
    std::string xml_text;
    std::string name;
  };

  /// Stage 1 of a commit: parses queued documents in parallel and appends
  /// them to the staging store in queue order.
  Status IngestPending(ThreadPool* pool);

  /// The commit pipeline shared by Finalize() and Commit(): ingests pending
  /// documents, builds the next Snapshot off to the side (incrementally over
  /// `base` unless forced full) and publishes it.
  Status CommitInternal(bool force_full_rebuild, CommitInfo* info);

  std::vector<PendingDocument> pending_docs_;
  /// Staging-store size when the first pending document was queued; AddXml()
  /// DocId promises are relative to it, and IngestPending() verifies it
  /// still holds.
  size_t pending_base_ = 0;
  /// Writer-side staging store; every snapshot serves an immutable clone.
  std::unique_ptr<store::DocumentStore> store_;
  /// Query-time scoring pool, created once at the first commit and co-owned
  /// by every published snapshot (commits never spawn query threads; null
  /// when query_threads resolves to 1).
  std::shared_ptr<ThreadPool> query_pool_;
  /// Currently-published epoch; atomically swapped by CommitInternal.
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_{nullptr};
  cube::Catalog catalog_;
  SedaOptions options_;
  uint64_t next_epoch_ = 1;
};

}  // namespace seda::core

#endif  // SEDA_CORE_SEDA_H_
