#include "core/snapshot.h"

#include "exec/candidates.h"
#include "obs/trace.h"

namespace seda::core {

audit::AuditReport Snapshot::Audit() const {
  return audit::SnapshotAuditor(store_.get(), index_.get(), graph_.get(),
                                guides_.get(), columns_.get())
      .AuditAll();
}

audit::AuditReport Snapshot::Audit(const persist::MappedImage& image) const {
  audit::SnapshotAuditor auditor(store_.get(), index_.get(), graph_.get(),
                                 guides_.get(), columns_.get());
  audit::AuditReport report = auditor.AuditAll();
  auditor.AuditImage(image, epoch_, &report);
  return report;
}

std::shared_ptr<const Snapshot> Snapshot::Build(
    std::unique_ptr<store::DocumentStore> store, const SedaOptions& options,
    uint64_t epoch, const Snapshot* base, ThreadPool* ingest_pool,
    std::shared_ptr<ThreadPool> query_pool) {
  // Not make_shared: the constructor is private, and a plain new keeps the
  // control block separate so the (large) snapshot frees as soon as the last
  // session drops it.
  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->epoch_ = epoch;
  snap->options_ = options;
  snap->store_ = std::move(store);

  // Stage 2 (stage 1, parsing, happened on the writer side): data graph.
  // Always a full rescan — a newly committed document may carry the id an
  // old document's dangling IDREF/XLink points at, and value-based edges may
  // span epochs, so link resolution is the one stage incremental commits
  // cannot reuse without changing results.
  snap->graph_ = std::make_unique<graph::DataGraph>(snap->store_.get());
  snap->graph_->ResolveLinks(options.resolve_idrefs, options.resolve_xlinks,
                             ingest_pool);
  for (const SedaOptions::ValueEdge& edge : options.value_edges) {
    snap->graph_->AddValueBasedEdges(edge.pk_path, edge.fk_path, edge.label);
  }
  // The edge log is final for this epoch: build the CSR kernel layer the
  // connection-scoring hot path runs on (graph/csr.h).
  snap->graph_->BuildCsr();

  // Stage 3: inverted index — with a base epoch, only the new documents'
  // shards are built and merged (appending after the base postings, which is
  // exactly where a from-scratch DocId-ordered merge would put them).
  store::DocId base_docs =
      base != nullptr ? static_cast<store::DocId>(base->store().DocumentCount())
                      : 0;
  if (base != nullptr) {
    snap->index_ = std::make_unique<text::InvertedIndex>(
        base->index(), snap->store_.get(), base_docs, ingest_pool);
  } else {
    snap->index_ =
        std::make_unique<text::InvertedIndex>(snap->store_.get(), ingest_pool);
  }

  // Stage 4: dataguide summary — the paper's build is sequential in document
  // order, so extending the base collection over the new documents makes the
  // same merge decisions a cold build over the full store would.
  dataguide::DataguideCollection::Options dg_options;
  dg_options.overlap_threshold = options.dataguide_overlap_threshold;
  dg_options.pool = ingest_pool;
  snap->guides_ = std::make_unique<dataguide::DataguideCollection>(
      base != nullptr
          ? dataguide::DataguideCollection::Extend(base->dataguides(),
                                                   *snap->store_, dg_options)
          : dataguide::DataguideCollection::Build(*snap->store_, dg_options));
  snap->guides_->AddLinksFromGraph(*snap->graph_);

  // Stage 5: columnar projections — rebuilt per epoch from the full store
  // (inference is deterministic in the store contents, so an incremental
  // commit infers exactly the columns a cold build over the same documents
  // would, keeping epochs bit-identical either way).
  snap->columns_ = column::ColumnStore::Build(*snap->store_, options.columns);

  snap->query_pool_ = std::move(query_pool);
  snap->searcher_ = std::make_unique<topk::TopKSearcher>(
      snap->index_.get(), snap->graph_.get(), snap->query_pool_.get());
  return snap;
}

void WriteSedaOptions(persist::ImageWriter* writer, const SedaOptions& options) {
  writer->PutDouble(options.dataguide_overlap_threshold);
  writer->PutU8(options.resolve_idrefs ? 1 : 0);
  writer->PutU8(options.resolve_xlinks ? 1 : 0);
  writer->PutU64(options.num_threads);
  writer->PutU64(options.query_threads);
  const topk::TopKOptions& topk = options.topk;
  writer->PutU64(topk.k);
  writer->PutU64(topk.max_candidates_per_term);
  writer->PutU64(topk.max_per_doc_per_term);
  writer->PutU64(topk.max_connect_depth);
  writer->PutU8(topk.allow_cross_document ? 1 : 0);
  writer->PutU64(topk.parallel_batch_min);
  writer->PutU64(topk.max_hub_degree);
  writer->PutU64(topk.max_tuples_per_query);
  writer->PutU64(topk.max_connect_visits);
  writer->PutU64(options.value_edges.size());
  for (const SedaOptions::ValueEdge& edge : options.value_edges) {
    writer->PutString(edge.pk_path);
    writer->PutString(edge.fk_path);
    writer->PutString(edge.label);
  }
  // Column-inference thresholds (appended; absent on pre-column images, see
  // the remaining() guard in ReadSedaOptions).
  writer->PutU8(options.columns.enabled ? 1 : 0);
  writer->PutDouble(options.columns.min_doc_support);
  writer->PutU64(options.columns.min_docs);
  writer->PutDouble(options.columns.max_avg_occurrences);
  writer->PutU64(options.columns.max_columns);
}

Result<SedaOptions> ReadSedaOptions(const persist::MappedImage& image) {
  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor cursor,
                        persist::OpenSection(image, persist::SectionId::kOptions));
  SedaOptions options;
  options.dataguide_overlap_threshold = cursor.GetDouble();
  options.resolve_idrefs = cursor.GetU8() != 0;
  options.resolve_xlinks = cursor.GetU8() != 0;
  options.num_threads = static_cast<size_t>(cursor.GetU64());
  options.query_threads = static_cast<size_t>(cursor.GetU64());
  options.topk.k = static_cast<size_t>(cursor.GetU64());
  options.topk.max_candidates_per_term = static_cast<size_t>(cursor.GetU64());
  options.topk.max_per_doc_per_term = static_cast<size_t>(cursor.GetU64());
  options.topk.max_connect_depth = static_cast<size_t>(cursor.GetU64());
  options.topk.allow_cross_document = cursor.GetU8() != 0;
  options.topk.parallel_batch_min = static_cast<size_t>(cursor.GetU64());
  options.topk.max_hub_degree = static_cast<size_t>(cursor.GetU64());
  options.topk.max_tuples_per_query = static_cast<size_t>(cursor.GetU64());
  options.topk.max_connect_visits = static_cast<size_t>(cursor.GetU64());
  uint64_t edge_count = cursor.GetU64();
  options.value_edges.reserve(cursor.BoundedCount(edge_count, 12));
  for (uint64_t i = 0; i < edge_count && !cursor.failed(); ++i) {
    SedaOptions::ValueEdge edge;
    edge.pk_path = cursor.GetString();
    edge.fk_path = cursor.GetString();
    edge.label = cursor.GetString();
    options.value_edges.push_back(std::move(edge));
  }
  // Pre-column images end here; the defaults then reproduce the inference a
  // contemporary commit would have run.
  if (cursor.remaining() > 0) {
    options.columns.enabled = cursor.GetU8() != 0;
    options.columns.min_doc_support = cursor.GetDouble();
    options.columns.min_docs = cursor.GetU64();
    options.columns.max_avg_occurrences = cursor.GetDouble();
    options.columns.max_columns = cursor.GetU64();
  }
  SEDA_RETURN_IF_ERROR(cursor.status());
  return options;
}

Status Snapshot::Save(const std::string& path) const {
  persist::ImageWriter writer;
  SEDA_RETURN_IF_ERROR(writer.Open(path));
  writer.BeginSection(persist::SectionId::kOptions);
  WriteSedaOptions(&writer, options_);
  SEDA_RETURN_IF_ERROR(writer.EndSection());
  SEDA_RETURN_IF_ERROR(store_->SaveTo(&writer));
  SEDA_RETURN_IF_ERROR(graph_->SaveTo(&writer));
  SEDA_RETURN_IF_ERROR(index_->SaveTo(&writer));
  SEDA_RETURN_IF_ERROR(guides_->SaveTo(&writer));
  if (options_.columns.enabled) {
    writer.BeginSection(persist::SectionId::kColumns);
    SEDA_RETURN_IF_ERROR(columns_->SaveTo(&writer));
    SEDA_RETURN_IF_ERROR(writer.EndSection());
  }
  return writer.Finish(epoch_);
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Load(
    std::shared_ptr<const persist::MappedImage> image, ThreadPool* load_pool,
    std::shared_ptr<ThreadPool> query_pool) {
  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->epoch_ = image->epoch();
  SEDA_ASSIGN_OR_RETURN(snap->options_, ReadSedaOptions(*image));
  SEDA_ASSIGN_OR_RETURN(snap->store_,
                        store::DocumentStore::LoadFrom(*image, load_pool));
  SEDA_ASSIGN_OR_RETURN(
      snap->graph_, graph::DataGraph::LoadFrom(image, snap->store_.get()));
  SEDA_ASSIGN_OR_RETURN(
      snap->index_, text::InvertedIndex::LoadFrom(image, snap->store_.get()));
  SEDA_ASSIGN_OR_RETURN(auto guides, dataguide::DataguideCollection::LoadFrom(
                                         *image, snap->store_.get()));
  snap->guides_ = std::make_unique<dataguide::DataguideCollection>(
      std::move(guides));
  // Columns map zero-copy when the image carries them; a pre-column image is
  // still a full epoch — the projections rebuild from the loaded trees.
  if (image->HasSection(persist::SectionId::kColumns)) {
    SEDA_ASSIGN_OR_RETURN(snap->columns_,
                          column::ColumnStore::LoadFrom(image, *snap->store_));
  } else {
    snap->columns_ =
        column::ColumnStore::Build(*snap->store_, snap->options_.columns);
  }
  snap->query_pool_ = std::move(query_pool);
  snap->searcher_ = std::make_unique<topk::TopKSearcher>(
      snap->index_.get(), snap->graph_.get(), snap->query_pool_.get());
  return std::shared_ptr<const Snapshot>(std::move(snap));
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Load(const std::string& path) {
  SEDA_ASSIGN_OR_RETURN(auto image, persist::MappedImage::Open(path));
  return Load(std::move(image), nullptr, nullptr);
}

Result<query::Query> Snapshot::Parse(const std::string& text) const {
  return query::ParseQuery(text);
}

Result<SearchResponse> Snapshot::Search(const query::Query& query) const {
  return Search(query, options_.topk);
}

Result<SearchResponse> Snapshot::Search(
    const query::Query& query, const topk::TopKOptions& topk_options) const {
  SearchResponse response;

  // One cursor-built candidate set per query, shared by the top-k engine and
  // the summary generators instead of re-evaluating the expressions.
  obs::ScopedSpan candidates_span(topk_options.trace, "candidates");
  exec::CandidateSet candidates = exec::BuildCandidates(
      *index_, query, topk_options.max_candidates_per_term);
  candidates_span.AddCounter("candidates_total", candidates.CandidatesTotal());
  candidates_span.End();

  obs::ScopedSpan topk_span(topk_options.trace, "topk");
  if (topk_options.shard_count > 1) {
    // Shard-by-DocId scatter-gather (the src/net/ serving mode): every shard
    // scans the same shared candidate set but scores only its own DocIds,
    // the scans fan out one-per-worker (each scoring inline — ParallelFor
    // must not nest), and the merged ranking is byte-identical to the
    // unsharded scan as long as no per-shard budget fires (see
    // topk::TopKOptions::shard_count).
    const size_t shards = topk_options.shard_count;
    std::vector<std::vector<topk::ScoredTuple>> shard_topk(shards);
    std::vector<topk::SearchStats> shard_stats(shards);
    std::vector<Status> shard_status(shards);
    topk_span.AddCounter("shards", shards);
    RunParallel(query_pool_.get(), shards, [&](size_t s) {
      topk::TopKOptions shard_options = topk_options;
      shard_options.shard_index = s;
      // Traces are single-threaded: the fan-out must not open spans from
      // worker threads, so shards scan untraced under the one "topk" span.
      shard_options.trace = nullptr;
      auto result =
          searcher_->Search(query, shard_options, candidates, &shard_stats[s]);
      if (result.ok()) {
        shard_topk[s] = std::move(result).value();
      } else {
        shard_status[s] = result.status();
      }
    });
    for (const Status& status : shard_status) SEDA_RETURN_IF_ERROR(status);
    response.topk = topk::MergeShardTopK(std::move(shard_topk), topk_options.k);
    // Candidate-set counters (candidates_total, postings_advanced,
    // docs_skipped) and the borrowing-phase hub skips are computed over the
    // full candidate set in every shard, so they are identical copies —
    // keep shard 0's. Scan-side counters partition across shards and sum.
    response.stats = shard_stats[0];
    response.stats.docs_considered = 0;
    response.stats.docs_scored = 0;
    response.stats.tuples_scored = 0;
    response.stats.heap_evictions = 0;
    response.stats.tuples_trimmed = 0;
    response.stats.bfs_expansions = 0;
    response.stats.intersection_probes = 0;
    response.stats.sketch_hits = 0;
    response.stats.early_terminated = false;
    response.stats.deadline_exceeded = false;
    for (const topk::SearchStats& stats : shard_stats) {
      response.stats.docs_considered += stats.docs_considered;
      response.stats.docs_scored += stats.docs_scored;
      response.stats.tuples_scored += stats.tuples_scored;
      response.stats.heap_evictions += stats.heap_evictions;
      response.stats.tuples_trimmed += stats.tuples_trimmed;
      response.stats.bfs_expansions += stats.bfs_expansions;
      response.stats.intersection_probes += stats.intersection_probes;
      response.stats.sketch_hits += stats.sketch_hits;
      response.stats.early_terminated |= stats.early_terminated;
      response.stats.deadline_exceeded |= stats.deadline_exceeded;
    }
  } else {
    // The searcher nests its own group_docs/ta_scan spans under "topk".
    topk::TopKOptions traced_options = topk_options;
    traced_options.trace = topk_span.get();
    auto topk_result =
        searcher_->Search(query, traced_options, candidates, &response.stats);
    if (!topk_result.ok()) return topk_result.status();
    response.topk = std::move(topk_result).value();
  }
  topk_span.End();
  response.stats.epoch = epoch_;

  obs::ScopedSpan context_span(topk_options.trace, "context_summary");
  summary::ContextSummaryGenerator context_gen(index_.get());
  std::vector<const std::vector<store::PathId>*> resolved_contexts;
  resolved_contexts.reserve(candidates.terms.size());
  for (const exec::TermCandidates& term : candidates.terms) {
    resolved_contexts.push_back(term.context_restricted ? &term.context_paths
                                                        : nullptr);
  }
  response.contexts = context_gen.Generate(query, resolved_contexts);
  context_span.End();

  // The connection summary consumes the engine's top-k tuples directly (the
  // §6.1 instance validation), so it inherits the shared candidate set too.
  obs::ScopedSpan connection_span(topk_options.trace, "connection_summary");
  summary::ConnectionSummaryGenerator connection_gen(guides_.get(),
                                                     graph_.get());
  response.connections = connection_gen.Generate(response.topk);
  connection_span.End();
  return response;
}

Result<SearchResponse> Snapshot::Search(const std::string& query_text) const {
  auto query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Search(query.value());
}

Result<query::Query> Snapshot::RefineContexts(
    const query::Query& query,
    const std::vector<std::vector<std::string>>& chosen_paths) {
  if (chosen_paths.size() != query.terms.size()) {
    return Status::InvalidArgument(
        "one context choice list per query term required: query has " +
        std::to_string(query.terms.size()) + " term(s) but " +
        std::to_string(chosen_paths.size()) + " list(s) were given");
  }
  query::Query refined = query;  // deep-copies terms
  for (size_t i = 0; i < refined.terms.size(); ++i) {
    if (chosen_paths[i].empty()) continue;  // keep unrestricted
    query::ContextSpec spec;
    for (const std::string& path : chosen_paths[i]) {
      if (path.empty() || path[0] != '/') {
        return Status::InvalidArgument(
            "context choice for term " + std::to_string(i) +
            " must be an absolute path; got '" + path + "'");
      }
      spec.AddPath(path);
    }
    refined.terms[i].context = std::move(spec);
  }
  return refined;
}

Result<twig::CompleteResult> Snapshot::CompleteResults(
    const query::Query& query, const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections,
    const twig::ExecuteOptions& options) const {
  if (term_paths.size() != query.terms.size()) {
    return Status::InvalidArgument("one chosen path per term required");
  }
  std::vector<twig::TermBinding> bindings;
  bindings.reserve(query.terms.size());
  for (size_t i = 0; i < query.terms.size(); ++i) {
    twig::TermBinding binding;
    binding.path = term_paths[i];
    binding.search = query.terms[i].search.get();
    bindings.push_back(binding);
  }
  twig::CompleteResultGenerator generator(index_.get(), graph_.get());
  return generator.Execute(bindings, connections, options);
}

Result<cube::StarSchema> Snapshot::BuildCube(
    const twig::CompleteResult& result, const cube::Catalog& catalog,
    const cube::CubeBuilder::Options& options) const {
  cube::CubeBuilder builder(store_.get(), &catalog, columns_.get());
  return builder.Build(result, options);
}

Result<olap::Cube> Snapshot::ToOlapCube(const cube::StarSchema& schema) const {
  if (schema.fact_tables.empty()) {
    return Status::FailedPrecondition("star schema has no fact table");
  }
  return olap::Cube::FromFactTable(schema.fact_tables.front());
}

}  // namespace seda::core
