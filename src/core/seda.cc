#include "core/seda.h"

namespace seda::core {

Status Seda::Finalize(const SedaOptions& options) {
  if (finalized()) return Status::FailedPrecondition("Seda already finalized");
  options_ = options;

  graph_ = std::make_unique<graph::DataGraph>(store_.get());
  if (options.resolve_idrefs) graph_->ResolveIdRefs();
  if (options.resolve_xlinks) graph_->ResolveXLinks();
  for (const SedaOptions::ValueEdge& edge : options.value_edges) {
    graph_->AddValueBasedEdges(edge.pk_path, edge.fk_path, edge.label);
  }

  index_ = std::make_unique<text::InvertedIndex>(store_.get());

  dataguide::DataguideCollection::Options dg_options;
  dg_options.overlap_threshold = options.dataguide_overlap_threshold;
  guides_ = std::make_unique<dataguide::DataguideCollection>(
      dataguide::DataguideCollection::Build(*store_, dg_options));
  guides_->AddLinksFromGraph(*graph_);

  searcher_ = std::make_unique<topk::TopKSearcher>(index_.get(), graph_.get());
  return Status::OK();
}

Result<query::Query> Seda::Parse(const std::string& text) const {
  return query::ParseQuery(text);
}

Result<SearchResponse> Seda::Search(const query::Query& query) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  SearchResponse response;
  auto topk_result = searcher_->Search(query, options_.topk, &response.stats);
  if (!topk_result.ok()) return topk_result.status();
  response.topk = std::move(topk_result).value();

  summary::ContextSummaryGenerator context_gen(index_.get());
  response.contexts = context_gen.Generate(query);

  summary::ConnectionSummaryGenerator connection_gen(guides_.get(), graph_.get());
  response.connections = connection_gen.Generate(response.topk);
  return response;
}

Result<SearchResponse> Seda::Search(const std::string& query_text) const {
  auto query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Search(query.value());
}

Result<query::Query> Seda::RefineContexts(
    const query::Query& query,
    const std::vector<std::vector<std::string>>& chosen_paths) const {
  if (chosen_paths.size() != query.terms.size()) {
    return Status::InvalidArgument("one context choice list per term required");
  }
  query::Query refined = query;  // deep-copies terms
  for (size_t i = 0; i < refined.terms.size(); ++i) {
    if (chosen_paths[i].empty()) continue;  // keep unrestricted
    query::ContextSpec spec;
    for (const std::string& path : chosen_paths[i]) {
      if (path.empty() || path[0] != '/') {
        return Status::InvalidArgument("context choices must be absolute paths; got '" +
                                       path + "'");
      }
      spec.AddPath(path);
    }
    refined.terms[i].context = std::move(spec);
  }
  return refined;
}

Result<twig::CompleteResult> Seda::CompleteResults(
    const query::Query& query, const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  if (term_paths.size() != query.terms.size()) {
    return Status::InvalidArgument("one chosen path per term required");
  }
  std::vector<twig::TermBinding> bindings;
  bindings.reserve(query.terms.size());
  for (size_t i = 0; i < query.terms.size(); ++i) {
    twig::TermBinding binding;
    binding.path = term_paths[i];
    binding.search = query.terms[i].search.get();
    bindings.push_back(binding);
  }
  twig::CompleteResultGenerator generator(index_.get(), graph_.get());
  return generator.Execute(bindings, connections);
}

Result<cube::StarSchema> Seda::BuildCube(
    const twig::CompleteResult& result,
    const cube::CubeBuilder::Options& options) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  cube::CubeBuilder builder(store_.get(), &catalog_);
  return builder.Build(result, options);
}

Result<olap::Cube> Seda::ToOlapCube(const cube::StarSchema& schema) const {
  if (schema.fact_tables.empty()) {
    return Status::FailedPrecondition("star schema has no fact table");
  }
  return olap::Cube::FromFactTable(schema.fact_tables.front());
}

}  // namespace seda::core
