#include "core/seda.h"

#include "exec/candidates.h"
#include "xml/parser.h"

namespace seda::core {

Result<store::DocId> Seda::AddXml(std::string xml_text, std::string doc_name) {
  // Queueing after Finalize() would drop the document silently: Finalize()
  // can never run again, so the promised id would never materialize.
  if (finalized()) {
    return Status::FailedPrecondition(
        "AddXml after Finalize(): the queued document could never be ingested");
  }
  if (pending_docs_.empty()) pending_base_ = store_->DocumentCount();
  store::DocId id =
      static_cast<store::DocId>(pending_base_ + pending_docs_.size());
  pending_docs_.push_back({std::move(xml_text), std::move(doc_name)});
  return id;
}

Status Seda::IngestPending(ThreadPool* pool) {
  if (pending_docs_.empty()) return Status::OK();
  if (store_->DocumentCount() != pending_base_) {
    // An eager mutable_store() load slipped in after the first AddXml(); the
    // DocIds promised by AddXml() would silently point at the wrong
    // documents, so fail loudly instead.
    return Status::FailedPrecondition(
        "documents were added to the store after the first deferred AddXml(); "
        "queue all eager loads before deferring");
  }

  // Parse (and assign Dewey ids) in parallel: documents are independent
  // until they enter the shared store.
  size_t count = pending_docs_.size();
  std::vector<std::unique_ptr<xml::Document>> parsed(count);
  std::vector<Status> statuses(count);
  RunParallel(pool, count, [&](size_t i) {
    auto result = xml::Parser::Parse(pending_docs_[i].xml_text,
                                     pending_docs_[i].name);
    if (result.ok()) {
      parsed[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  // Append in queue order so DocIds match what AddXml() promised and path
  // interning order is deterministic.
  for (std::unique_ptr<xml::Document>& doc : parsed) {
    store_->AddDocument(std::move(doc));
  }
  pending_docs_.clear();
  return Status::OK();
}

Status Seda::Finalize(const SedaOptions& options) {
  if (finalized()) return Status::FailedPrecondition("Seda already finalized");
  options_ = options;

  // The ingestion pipeline (Fig. 6 left half) runs in four stages. Stages
  // fan per-document work out over the pool; every merge happens in DocId
  // order, so any worker count produces identical indexes and dataguides.
  size_t threads =
      options.num_threads == 0 ? ThreadPool::DefaultThreadCount() : options.num_threads;
  std::unique_ptr<ThreadPool> pool;
  // The calling thread participates in every ParallelFor, so spawn one fewer
  // worker than the requested parallelism to avoid oversubscribing by one.
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  // Stage 1: parse queued documents and load them into the store.
  SEDA_RETURN_IF_ERROR(IngestPending(pool.get()));

  // Stage 2: data graph construction (parallel per-document link scans,
  // sharing one id-target scan between IDREF and XLink resolution).
  graph_ = std::make_unique<graph::DataGraph>(store_.get());
  graph_->ResolveLinks(options.resolve_idrefs, options.resolve_xlinks,
                       pool.get());
  for (const SedaOptions::ValueEdge& edge : options.value_edges) {
    graph_->AddValueBasedEdges(edge.pk_path, edge.fk_path, edge.label);
  }

  // Stage 3: inverted index (parallel per-document posting construction).
  index_ = std::make_unique<text::InvertedIndex>(store_.get(), pool.get());

  // Stage 4: dataguide summary (parallel overlap probing).
  dataguide::DataguideCollection::Options dg_options;
  dg_options.overlap_threshold = options.dataguide_overlap_threshold;
  dg_options.pool = pool.get();
  guides_ = std::make_unique<dataguide::DataguideCollection>(
      dataguide::DataguideCollection::Build(*store_, dg_options));
  guides_->AddLinksFromGraph(*graph_);

  // Query-time pool: as with ingestion, the searching thread participates in
  // every scoring batch, so spawn one fewer worker than the requested
  // parallelism.
  size_t query_threads = options.query_threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options.query_threads;
  if (query_threads > 1) {
    query_pool_ = std::make_unique<ThreadPool>(query_threads - 1);
  }
  searcher_ = std::make_unique<topk::TopKSearcher>(index_.get(), graph_.get(),
                                                   query_pool_.get());
  return Status::OK();
}

Result<query::Query> Seda::Parse(const std::string& text) const {
  return query::ParseQuery(text);
}

Result<SearchResponse> Seda::Search(const query::Query& query) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  SearchResponse response;

  // One cursor-built candidate set per query, shared by the top-k engine and
  // the summary generators instead of re-evaluating the expressions.
  exec::CandidateSet candidates = exec::BuildCandidates(
      *index_, query, options_.topk.max_candidates_per_term);

  auto topk_result =
      searcher_->Search(query, options_.topk, candidates, &response.stats);
  if (!topk_result.ok()) return topk_result.status();
  response.topk = std::move(topk_result).value();

  summary::ContextSummaryGenerator context_gen(index_.get());
  std::vector<const std::vector<store::PathId>*> resolved_contexts;
  resolved_contexts.reserve(candidates.terms.size());
  for (const exec::TermCandidates& term : candidates.terms) {
    resolved_contexts.push_back(term.context_restricted ? &term.context_paths
                                                        : nullptr);
  }
  response.contexts = context_gen.Generate(query, resolved_contexts);

  // The connection summary consumes the engine's top-k tuples directly (the
  // §6.1 instance validation), so it inherits the shared candidate set too.
  summary::ConnectionSummaryGenerator connection_gen(guides_.get(), graph_.get());
  response.connections = connection_gen.Generate(response.topk);
  return response;
}

Result<SearchResponse> Seda::Search(const std::string& query_text) const {
  auto query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Search(query.value());
}

Result<query::Query> Seda::RefineContexts(
    const query::Query& query,
    const std::vector<std::vector<std::string>>& chosen_paths) const {
  if (chosen_paths.size() != query.terms.size()) {
    return Status::InvalidArgument("one context choice list per term required");
  }
  query::Query refined = query;  // deep-copies terms
  for (size_t i = 0; i < refined.terms.size(); ++i) {
    if (chosen_paths[i].empty()) continue;  // keep unrestricted
    query::ContextSpec spec;
    for (const std::string& path : chosen_paths[i]) {
      if (path.empty() || path[0] != '/') {
        return Status::InvalidArgument("context choices must be absolute paths; got '" +
                                       path + "'");
      }
      spec.AddPath(path);
    }
    refined.terms[i].context = std::move(spec);
  }
  return refined;
}

Result<twig::CompleteResult> Seda::CompleteResults(
    const query::Query& query, const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  if (term_paths.size() != query.terms.size()) {
    return Status::InvalidArgument("one chosen path per term required");
  }
  std::vector<twig::TermBinding> bindings;
  bindings.reserve(query.terms.size());
  for (size_t i = 0; i < query.terms.size(); ++i) {
    twig::TermBinding binding;
    binding.path = term_paths[i];
    binding.search = query.terms[i].search.get();
    bindings.push_back(binding);
  }
  twig::CompleteResultGenerator generator(index_.get(), graph_.get());
  return generator.Execute(bindings, connections);
}

Result<cube::StarSchema> Seda::BuildCube(
    const twig::CompleteResult& result,
    const cube::CubeBuilder::Options& options) const {
  if (!finalized()) return Status::FailedPrecondition("call Finalize() first");
  cube::CubeBuilder builder(store_.get(), &catalog_);
  return builder.Build(result, options);
}

Result<olap::Cube> Seda::ToOlapCube(const cube::StarSchema& schema) const {
  if (schema.fact_tables.empty()) {
    return Status::FailedPrecondition("star schema has no fact table");
  }
  return olap::Cube::FromFactTable(schema.fact_tables.front());
}

}  // namespace seda::core
