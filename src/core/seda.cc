#include "core/seda.h"

#include "xml/parser.h"

namespace seda::core {

Result<store::DocId> Seda::AddXml(std::string xml_text, std::string doc_name) {
  if (pending_docs_.empty()) pending_base_ = store_->DocumentCount();
  store::DocId id =
      static_cast<store::DocId>(pending_base_ + pending_docs_.size());
  pending_docs_.push_back({std::move(xml_text), std::move(doc_name)});
  return id;
}

Status Seda::IngestPending(ThreadPool* pool) {
  if (pending_docs_.empty()) return Status::OK();
  if (store_->DocumentCount() != pending_base_) {
    // An eager mutable_store() load slipped in after the first AddXml() of
    // this commit cycle; the DocIds promised by AddXml() would silently
    // point at the wrong documents, so fail loudly instead.
    return Status::FailedPrecondition(
        "documents were added to the store after the first deferred AddXml(); "
        "queue all eager loads before deferring");
  }

  // Parse (and assign Dewey ids) in parallel: documents are independent
  // until they enter the shared store.
  size_t count = pending_docs_.size();
  std::vector<std::unique_ptr<xml::Document>> parsed(count);
  std::vector<Status> statuses(count);
  RunParallel(pool, count, [&](size_t i) {
    auto result = xml::Parser::Parse(pending_docs_[i].xml_text,
                                     pending_docs_[i].name);
    if (result.ok()) {
      parsed[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  // Append in queue order so DocIds match what AddXml() promised and path
  // interning order is deterministic.
  for (std::unique_ptr<xml::Document>& doc : parsed) {
    store_->AddDocument(std::move(doc));
  }
  pending_docs_.clear();
  return Status::OK();
}

Status Seda::Finalize(const SedaOptions& options) {
  if (finalized()) {
    return Status::FailedPrecondition(
        "Seda already finalized; ingest later epochs with AddXml() + Commit()");
  }
  options_ = options;
  CommitInfo info;
  return CommitInternal(/*force_full_rebuild=*/true, &info);
}

Status Seda::Open(const std::string& path) {
  if (finalized()) {
    return Status::FailedPrecondition(
        "Open() requires a fresh Seda instance (already finalized)");
  }
  if (!pending_docs_.empty() || store_->DocumentCount() > 0) {
    return Status::FailedPrecondition(
        "Open() requires an empty staging store; load images before staging "
        "documents");
  }
  SEDA_ASSIGN_OR_RETURN(auto image, persist::MappedImage::Open(path));
  SEDA_ASSIGN_OR_RETURN(options_, ReadSedaOptions(*image));

  // Pools are sized from the restored options, mirroring CommitInternal: a
  // transient ingest-shaped pool for parallel document materialization, and
  // the long-lived query pool every epoch co-owns.
  size_t threads = options_.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                             : options_.num_threads;
  std::unique_ptr<ThreadPool> load_pool;
  if (threads > 1) load_pool = std::make_unique<ThreadPool>(threads - 1);
  size_t query_threads = options_.query_threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options_.query_threads;
  if (query_threads > 1) {
    query_pool_ = std::make_shared<ThreadPool>(query_threads - 1);
  }

  SEDA_ASSIGN_OR_RETURN(
      std::shared_ptr<const Snapshot> snap,
      Snapshot::Load(std::move(image), load_pool.get(), query_pool_));
  // The staging store continues from the loaded epoch's view (documents are
  // shared, not copied), so the next Commit() extends it incrementally.
  store_ = snap->store().Clone();
  next_epoch_ = snap->epoch() + 1;
  snapshot_.store(std::move(snap), std::memory_order_release);
  return Status::OK();
}

Status Seda::Save(const std::string& path) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("call Finalize() or Open() first");
  }
  return snap->Save(path);
}

Result<Seda::CommitInfo> Seda::Commit(const CommitOptions& options) {
  if (!finalized()) {
    return Status::FailedPrecondition(
        "call Finalize() first — it performs the first commit and fixes the "
        "SedaOptions");
  }
  CommitInfo info;
  SEDA_RETURN_IF_ERROR(CommitInternal(options.force_full_rebuild, &info));
  return info;
}

Status Seda::CommitInternal(bool force_full_rebuild, CommitInfo* info) {
  std::shared_ptr<const Snapshot> base = snapshot();
  size_t base_docs = base != nullptr ? base->store().DocumentCount() : 0;

  if (base != nullptr && !force_full_rebuild && pending_docs_.empty() &&
      store_->DocumentCount() == base_docs) {
    // Nothing new: the published epoch already serves exactly this state.
    // Checked before any pool spawns, so a polling Commit() really is cheap.
    info->epoch = base->epoch();
    info->docs_added = 0;
    info->docs_total = base_docs;
    info->incremental = true;
    return Status::OK();
  }

  // The commit pipeline (Fig. 6 left half) runs in four stages. Stages fan
  // per-document work out over the pool; every merge happens in DocId order,
  // so any worker count produces identical indexes and dataguides. The
  // calling thread participates in every ParallelFor, so spawn one fewer
  // worker than the requested parallelism to avoid oversubscribing by one.
  size_t threads = options_.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                             : options_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  // Stage 1: parse queued documents and load them into the staging store.
  SEDA_RETURN_IF_ERROR(IngestPending(pool.get()));

  // Query-time pool, shared by every epoch: the searching thread
  // participates in every scoring batch, so spawn one fewer worker than the
  // requested parallelism. Created once, at the first commit.
  if (base == nullptr) {
    size_t query_threads = options_.query_threads == 0
                               ? ThreadPool::DefaultThreadCount()
                               : options_.query_threads;
    if (query_threads > 1) {
      query_pool_ = std::make_shared<ThreadPool>(query_threads - 1);
    }
  }

  // Stages 2-4 run inside Snapshot::Build, off to the side of the published
  // epoch: readers keep querying `base` undisturbed until the single atomic
  // swap below.
  const Snapshot* base_ptr = force_full_rebuild ? nullptr : base.get();
  std::shared_ptr<const Snapshot> next =
      Snapshot::Build(store_->Clone(), options_, next_epoch_, base_ptr,
                      pool.get(), query_pool_);
  ++next_epoch_;

  info->epoch = next->epoch();
  info->docs_total = store_->DocumentCount();
  info->docs_added = info->docs_total - base_docs;
  info->incremental = base_ptr != nullptr;

  snapshot_.store(std::move(next), std::memory_order_release);
  return Status::OK();
}

Result<Session> Seda::NewSession() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("call Finalize() first");
  }
  return Session(std::move(snap), &catalog_);
}

// --- Legacy facade ----------------------------------------------------

const store::DocumentStore& Seda::store() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  // Before the first commit the staging store is the only store there is;
  // afterwards, queries (and the NodeIds they return) live against the
  // published epoch's view.
  return snap != nullptr ? snap->store() : *store_;
}

const graph::DataGraph& Seda::data_graph() const {
  return snapshot()->data_graph();
}

const text::InvertedIndex& Seda::index() const { return snapshot()->index(); }

const dataguide::DataguideCollection& Seda::dataguides() const {
  return snapshot()->dataguides();
}

Result<query::Query> Seda::Parse(const std::string& text) const {
  return query::ParseQuery(text);
}

// Each shim pins the current snapshot for exactly one call — a one-shot
// session without the Session object's state copies.

Result<SearchResponse> Seda::Search(const query::Query& query) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) return Status::FailedPrecondition("call Finalize() first");
  return snap->Search(query);
}

Result<SearchResponse> Seda::Search(const std::string& query_text) const {
  auto query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Search(query.value());
}

Result<query::Query> Seda::RefineContexts(
    const query::Query& query,
    const std::vector<std::vector<std::string>>& chosen_paths) const {
  return Snapshot::RefineContexts(query, chosen_paths);
}

Result<twig::CompleteResult> Seda::CompleteResults(
    const query::Query& query, const std::vector<std::string>& term_paths,
    const std::vector<twig::ChosenConnection>& connections) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) return Status::FailedPrecondition("call Finalize() first");
  return snap->CompleteResults(query, term_paths, connections);
}

Result<cube::StarSchema> Seda::BuildCube(
    const twig::CompleteResult& result,
    const cube::CubeBuilder::Options& options) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) return Status::FailedPrecondition("call Finalize() first");
  return snap->BuildCube(result, catalog_, options);
}

Result<olap::Cube> Seda::ToOlapCube(const cube::StarSchema& schema) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap == nullptr) return Status::FailedPrecondition("call Finalize() first");
  return snap->ToOlapCube(schema);
}

}  // namespace seda::core
