#ifndef SEDA_CORE_SESSION_H_
#define SEDA_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/snapshot.h"

namespace seda::core {

/// One interactive exploration (the paper's Fig. 6 loop) as an object: a
/// Session pins a single Snapshot for its whole lifetime and carries the
/// loop's accumulated state — the current (possibly refined) query, the last
/// SearchResponse and the refinement history — so a multi-round exploration
/// is one handle, and every round sees the same data no matter how many
/// Commit()s land meanwhile. Obtain one via Seda::NewSession(), or pin any
/// Snapshot directly.
///
/// A Session is single-threaded (it mutates its own state); run concurrent
/// explorations in separate Sessions, which may freely share a snapshot.
/// The pinned epoch stays alive for as long as the Session holds it, even if
/// the owning Seda is destroyed; only BuildCube needs the writer-side
/// catalog to still exist.
class Session {
 public:
  /// `catalog` (optional) supplies user-defined dimensions/facts for
  /// BuildCube; not owned and may be defined/extended after creation.
  explicit Session(std::shared_ptr<const Snapshot> snapshot,
                   const cube::Catalog* catalog = nullptr)
      : snapshot_(std::move(snapshot)), catalog_(catalog) {}

  /// Epoch this session is pinned to (constant for the session's lifetime).
  uint64_t epoch() const { return snapshot_->epoch(); }
  const Snapshot& snapshot() const { return *snapshot_; }

  Result<query::Query> Parse(const std::string& text) const {
    return snapshot_->Parse(text);
  }

  /// Fig. 6 first stage: runs top-k search plus both summaries, making
  /// `query` the session's current query. Starting a new Search resets the
  /// refinement history — it begins a fresh exploration on the same pin.
  Result<SearchResponse> Search(const query::Query& query);
  Result<SearchResponse> Search(const std::string& query_text);

  /// Search with per-request engine options (deadline_ms, k, ... — the
  /// api::SedaService request path); state updates are identical to Search().
  Result<SearchResponse> Search(const query::Query& query,
                                const topk::TopKOptions& topk_options);
  Result<SearchResponse> Search(const std::string& query_text,
                                const topk::TopKOptions& topk_options);

  /// Fig. 6 feedback edge: applies the user's context picks (one list per
  /// term; empty = leave that term as is) to the current query and re-runs
  /// Search. Requires a prior Search in this session. `chosen_paths` must
  /// carry exactly one list per query term; a mismatch (or a non-absolute
  /// path, reported with its term index) returns InvalidArgument.
  Result<SearchResponse> RefineContexts(
      const std::vector<std::vector<std::string>>& chosen_paths);
  Result<SearchResponse> RefineContexts(
      const std::vector<std::vector<std::string>>& chosen_paths,
      const topk::TopKOptions& topk_options);

  /// Fig. 6 completion stage: the complete result set R(q) for the current
  /// query with terms pinned to single contexts, honoring chosen
  /// connections. Requires a prior Search. `options.deadline_ms` bounds the
  /// twig join (partial results report deadline_exceeded).
  Result<twig::CompleteResult> CompleteResults(
      const std::vector<std::string>& term_paths,
      const std::vector<twig::ChosenConnection>& connections,
      const twig::ExecuteOptions& options = {}) const;

  /// Fig. 6 last stage: star schema (and OLAP cube) from a complete result,
  /// using the catalog handed to the constructor.
  Result<cube::StarSchema> BuildCube(
      const twig::CompleteResult& result,
      const cube::CubeBuilder::Options& options) const;
  Result<cube::StarSchema> BuildCube(const twig::CompleteResult& result) const {
    return BuildCube(result, cube::CubeBuilder::Options{});
  }
  Result<olap::Cube> ToOlapCube(const cube::StarSchema& schema) const {
    return snapshot_->ToOlapCube(schema);
  }

  /// Installs `query` as the current query without searching — the escape
  /// hatch for callers (and the legacy Seda shims) that already hold a
  /// refined query and only want CompleteResults.
  void SetQuery(query::Query query) { current_query_ = std::move(query); }

  bool has_query() const { return current_query_.has_value(); }
  const query::Query& current_query() const { return *current_query_; }
  /// Last successful SearchResponse, or nullptr before the first Search.
  const SearchResponse* last_response() const {
    return last_response_.has_value() ? &*last_response_ : nullptr;
  }
  /// Number of successful Search rounds (refinements included).
  size_t rounds() const { return rounds_; }
  /// The context picks of each successful RefineContexts round since the
  /// last fresh Search, oldest first.
  const std::vector<std::vector<std::vector<std::string>>>& refinement_history()
      const {
    return refinement_history_;
  }

 private:
  std::shared_ptr<const Snapshot> snapshot_;
  const cube::Catalog* catalog_;
  std::optional<query::Query> current_query_;
  std::optional<SearchResponse> last_response_;
  std::vector<std::vector<std::vector<std::string>>> refinement_history_;
  size_t rounds_ = 0;
};

}  // namespace seda::core

#endif  // SEDA_CORE_SESSION_H_
