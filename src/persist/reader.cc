#include "persist/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace seda::persist {

MappedImage::~MappedImage() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Result<std::shared_ptr<MappedImage>> MappedImage::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open image: " + path);

  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat image: " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);

  std::shared_ptr<MappedImage> image(new MappedImage());
  image->path_ = path;
  image->size_ = size;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      image->data_ = static_cast<const uint8_t*>(mapping);
      image->mapped_ = true;
    } else {
      // mmap unavailable (exotic filesystem): fall back to one heap read so
      // Open keeps working; everything downstream is agnostic to the source.
      image->fallback_.resize(size);
      ssize_t got = ::pread(fd, image->fallback_.data(), size, 0);
      if (got < 0 || static_cast<size_t>(got) != size) {
        ::close(fd);
        return Status::IoError("cannot read image: " + path);
      }
      image->data_ = image->fallback_.data();
    }
  }
  ::close(fd);

  Status valid = image->Validate();
  if (!valid.ok()) return valid;
  return image;
}

Result<std::shared_ptr<MappedImage>> MappedImage::FromBuffer(
    std::vector<uint8_t> bytes, const std::string& name) {
  std::shared_ptr<MappedImage> image(new MappedImage());
  image->path_ = name;
  image->size_ = bytes.size();
  image->fallback_ = std::move(bytes);
  image->data_ = image->fallback_.data();

  Status valid = image->Validate();
  if (!valid.ok()) return valid;
  return image;
}

Status MappedImage::Validate() {
  if (size_ < sizeof(FileHeader)) {
    return Status::ParseError("image truncated: " + path_ + " (" +
                              std::to_string(size_) + " bytes, header needs " +
                              std::to_string(sizeof(FileHeader)) + ")");
  }
  std::memcpy(&header_, data_, sizeof(header_));
  if (std::memcmp(header_.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a SEDA snapshot image: " + path_);
  }
  if (header_.format_version != kFormatVersion) {
    return Status::FailedPrecondition(
        "image format version " + std::to_string(header_.format_version) +
        " unsupported (reader speaks version " +
        std::to_string(kFormatVersion) + "): " + path_);
  }
  if (header_.endian_tag != kEndianTag) {
    return Status::FailedPrecondition(
        "image byte order does not match this machine: " + path_);
  }
  uint32_t expected_crc = Crc32(&header_, offsetof(FileHeader, header_crc));
  if (header_.header_crc != expected_crc) {
    return Status::ParseError("image header CRC mismatch: " + path_);
  }
  if (header_.file_size != size_) {
    return Status::ParseError(
        "image truncated: " + path_ + " (header declares " +
        std::to_string(header_.file_size) + " bytes, file has " +
        std::to_string(size_) + ")");
  }

  // Section table bounds, then entries, then per-section bounds + CRC.
  // Guard the count before multiplying: a wrapped table_bytes could pass
  // the range check and turn resize() into an abort instead of a Status.
  if (header_.section_table_offset > size_ ||
      header_.section_count >
          (size_ - header_.section_table_offset) / sizeof(SectionEntry)) {
    return Status::ParseError("image section table out of bounds: " + path_);
  }
  sections_.resize(header_.section_count);
  std::memcpy(sections_.data(), data_ + header_.section_table_offset,
              static_cast<size_t>(header_.section_count) * sizeof(SectionEntry));
  for (const SectionEntry& entry : sections_) {
    const char* name = SectionName(static_cast<SectionId>(entry.id));
    if (entry.offset > size_ || entry.size > size_ - entry.offset) {
      return Status::ParseError(std::string("image section '") + name +
                                "' out of bounds: " + path_);
    }
    uint32_t crc = Crc32(data_ + entry.offset, static_cast<size_t>(entry.size));
    if (crc != entry.crc) {
      return Status::ParseError(std::string("image section '") + name +
                                "' CRC mismatch (corrupt image): " + path_);
    }
  }
  return Status::OK();
}

bool MappedImage::HasSection(SectionId id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == static_cast<uint32_t>(id)) return true;
  }
  return false;
}

Result<std::pair<const uint8_t*, size_t>> MappedImage::Section(
    SectionId id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == static_cast<uint32_t>(id)) {
      return std::make_pair(data_ + entry.offset,
                            static_cast<size_t>(entry.size));
    }
  }
  return Status::NotFound(std::string("image has no '") + SectionName(id) +
                          "' section: " + path_);
}

Status SectionCursor::status() const {
  if (!failed_) return Status::OK();
  return Status::ParseError(std::string("image section '") + SectionName(id_) +
                            "' decode ran past its end (corrupt image)");
}

Result<SectionCursor> OpenSection(const MappedImage& image, SectionId id) {
  auto span = image.Section(id);
  if (!span.ok()) return span.status();
  return SectionCursor(span->first, span->second, id);
}

}  // namespace seda::persist
