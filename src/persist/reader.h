#ifndef SEDA_PERSIST_READER_H_
#define SEDA_PERSIST_READER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "persist/format.h"

namespace seda::persist {

/// A snapshot image mapped read-only into the address space. Open() validates
/// the header (magic, format version, endianness, declared vs actual size),
/// the section table bounds and every section's CRC32 before returning, so a
/// truncated, corrupted or mismatched image surfaces as one clean Status and
/// decoding never touches unverified bytes.
///
/// The mapping is the only copy of the bulk data: SectionCursors decode
/// directly out of it (offset-addressed, alignment-padded segments), and only
/// the pointer-bearing heads — hash indexes, tree nodes, posting vectors —
/// are materialized on the heap by the per-layer Load hooks.
class MappedImage {
 public:
  static Result<std::shared_ptr<MappedImage>> Open(const std::string& path);

  /// Validates `bytes` as an image without touching the filesystem — the
  /// in-memory twin of Open() used by the audit tooling and the image fuzzer
  /// (which feed crafted byte streams that never came from a file).
  static Result<std::shared_ptr<MappedImage>> FromBuffer(
      std::vector<uint8_t> bytes, const std::string& name);

  ~MappedImage();
  MappedImage(const MappedImage&) = delete;
  MappedImage& operator=(const MappedImage&) = delete;

  uint64_t epoch() const { return header_.epoch; }
  uint64_t file_size() const { return header_.file_size; }
  const std::string& path() const { return path_; }

  bool HasSection(SectionId id) const;
  /// Payload span of a section; NotFound when the image lacks it.
  Result<std::pair<const uint8_t*, size_t>> Section(SectionId id) const;

  /// The validated section table, in file order (audit tooling: lets the
  /// SnapshotAuditor cross-check declared section layout against the
  /// structures the Load hooks decoded).
  const std::vector<SectionEntry>& sections() const { return sections_; }

 private:
  MappedImage() = default;
  Status Validate();

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;            ///< mmap'd vs heap fallback
  std::vector<uint8_t> fallback_;  ///< used when mmap is unavailable
  FileHeader header_{};
  std::vector<SectionEntry> sections_;
};

/// Bounds-checked sequential decoder over one section's bytes. Errors are
/// sticky: any read past the end returns zeroes/empties and latches a failed
/// state, so decode loops stay branch-light and callers check status() once
/// at the end. The CRC pass in MappedImage::Open makes overruns unreachable
/// for well-formed images; the checks here keep even a hostile image at
/// "clean error", never undefined behaviour.
class SectionCursor {
 public:
  SectionCursor(const uint8_t* data, size_t size, SectionId id)
      : data_(data), end_(data + size), id_(id) {
    // Programmer contract, not an input check: hostile *content* is handled
    // by the sticky Ensure() bounds below, but the span itself must be real.
    SEDA_DCHECK(data != nullptr || size == 0)
        << "section cursor over a null span";
  }

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetDouble() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint32_t size = GetU32();
    if (!Ensure(size)) return {};
    std::string out(reinterpret_cast<const char*>(data_), size);
    data_ += size;
    return out;
  }
  /// Reads a u32-count-prefixed flat array in one memcpy.
  std::vector<uint32_t> GetU32Array() {
    uint32_t count = GetU32();
    std::vector<uint32_t> out;
    size_t bytes = size_t{count} * sizeof(uint32_t);
    if (!Ensure(bytes)) return out;
    out.resize(count);
    std::memcpy(out.data(), data_, bytes);
    data_ += bytes;
    return out;
  }

  /// Zero-copy twin of GetU32Array: returns (pointer, count) into the
  /// mapping and skips past the array. Valid only in sections whose layout
  /// is all-u32 (e.g. kGraphCsr): section payloads are 64-byte aligned and
  /// every preceding read advanced by a multiple of 4, so the span is
  /// 4-byte aligned for direct uint32_t access.
  std::pair<const uint32_t*, size_t> GetU32Span() {
    uint32_t count = GetU32();
    size_t bytes = size_t{count} * sizeof(uint32_t);
    if (!Ensure(bytes)) return {nullptr, 0};
    SEDA_DCHECK_EQ(reinterpret_cast<uintptr_t>(data_) % alignof(uint32_t), 0u)
        << "GetU32Span in a section with non-u32 layout";
    const uint32_t* span = reinterpret_cast<const uint32_t*>(data_);
    data_ += bytes;
    return {span, count};
  }

  /// Reads a u64-length-prefixed sub-blob (ImageWriter::BeginBlob/EndBlob):
  /// returns an independent cursor over its bytes and skips past it, so
  /// callers can stash blob cursors and decode them in parallel.
  SectionCursor GetBlob() {
    uint64_t size = GetU64();
    if (!Ensure(size)) return SectionCursor(nullptr, 0, id_);
    SectionCursor sub(data_, static_cast<size_t>(size), id_);
    data_ += size;
    return sub;
  }

  bool failed() const { return failed_; }
  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  /// Current read position (valid for remaining() bytes) — lets callers keep
  /// a not-yet-decoded span as an offset-addressed view into the mapping.
  const uint8_t* data() const { return data_; }

  /// Clamp for container reserves driven by decoded counts: no section can
  /// hold more elements than its remaining bytes could encode, so a garbage
  /// count (which bounds checks will catch a few reads later) never triggers
  /// a pathological allocation first.
  size_t BoundedCount(uint64_t count, size_t min_bytes_per_element) const {
    uint64_t cap = min_bytes_per_element > 0
                       ? remaining() / min_bytes_per_element
                       : remaining();
    return static_cast<size_t>(count < cap ? count : cap);
  }

  /// OK iff every read so far was in bounds. Call after decoding a section;
  /// the message names the section.
  Status status() const;

 private:
  bool Ensure(size_t size) {
    if (failed_ || size > remaining()) {
      failed_ = true;
      return false;
    }
    return true;
  }
  void GetRaw(void* out, size_t size) {
    if (!Ensure(size)) return;
    std::memcpy(out, data_, size);
    data_ += size;
  }

  const uint8_t* data_;
  const uint8_t* end_;
  SectionId id_;
  bool failed_ = false;
};

/// Convenience: cursor over a section of `image`, or NotFound.
Result<SectionCursor> OpenSection(const MappedImage& image, SectionId id);

}  // namespace seda::persist

#endif  // SEDA_PERSIST_READER_H_
