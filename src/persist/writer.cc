#include "persist/writer.h"

#include <cstdio>

namespace seda::persist {

namespace {

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(uint64_t{kSectionAlignment} - 1);
}

}  // namespace

ImageWriter::~ImageWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ImageWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("ImageWriter already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot create image file: " + path);
  }
  path_ = path;
  // Reserve the header slot with zeroes; Finish() rewrites it. Until then the
  // magic check makes readers reject the partial image.
  const char blank[sizeof(FileHeader)] = {0};
  if (std::fwrite(blank, sizeof(blank), 1, file_) != 1) {
    return Status::IoError("write failed: " + path_);
  }
  offset_ = sizeof(FileHeader);
  return Status::OK();
}

void ImageWriter::BeginSection(SectionId id) {
  current_id_ = id;
  in_section_ = true;
  buffer_.clear();
  sink_ = &buffer_;
}

Status ImageWriter::WritePadded(const void* data, size_t size) {
  uint64_t aligned = AlignUp(offset_);
  if (aligned != offset_) {
    static const char zeroes[kSectionAlignment] = {0};
    size_t pad = static_cast<size_t>(aligned - offset_);
    if (std::fwrite(zeroes, 1, pad, file_) != pad) {
      return Status::IoError("write failed: " + path_);
    }
    offset_ = aligned;
  }
  if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError("write failed: " + path_);
  }
  offset_ += size;
  return Status::OK();
}

Status ImageWriter::EndSection() {
  if (file_ == nullptr || !in_section_) {
    return Status::FailedPrecondition("EndSection without BeginSection");
  }
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(current_id_);
  entry.offset = AlignUp(offset_);
  entry.size = buffer_.size();
  entry.crc = Crc32(buffer_.data(), buffer_.size());
  SEDA_RETURN_IF_ERROR(WritePadded(buffer_.data(), buffer_.size()));
  sections_.push_back(entry);
  buffer_.clear();
  in_section_ = false;
  return Status::OK();
}

Status ImageWriter::Finish(uint64_t epoch) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  if (in_section_) return Status::FailedPrecondition("unterminated section");

  uint64_t table_offset = AlignUp(offset_);
  SEDA_RETURN_IF_ERROR(WritePadded(
      sections_.data(), sections_.size() * sizeof(SectionEntry)));

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.format_version = kFormatVersion;
  header.endian_tag = kEndianTag;
  header.epoch = epoch;
  header.section_count = sections_.size();
  header.section_table_offset = table_offset;
  header.file_size = offset_;
  header.header_crc =
      Crc32(&header, offsetof(FileHeader, header_crc));
  bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
            std::fwrite(&header, sizeof(header), 1, file_) == 1 &&
            std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) return Status::IoError("finalizing image failed: " + path_);
  return Status::OK();
}

}  // namespace seda::persist
