#ifndef SEDA_PERSIST_WRITER_H_
#define SEDA_PERSIST_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "persist/format.h"

namespace seda::persist {

/// Streaming writer for a snapshot image. Usage:
///
///   ImageWriter writer;
///   SEDA_RETURN_IF_ERROR(writer.Open(path));
///   writer.BeginSection(SectionId::kStorePaths);
///   writer.PutU64(...); writer.PutString(...);
///   SEDA_RETURN_IF_ERROR(writer.EndSection());
///   ... more sections ...
///   SEDA_RETURN_IF_ERROR(writer.Finish(epoch));
///
/// Each section is buffered in memory, checksummed, and flushed at a
/// kSectionAlignment boundary. Finish() appends the section table and
/// rewrites the header, so a crash mid-write leaves an image that readers
/// reject (the header is all zeroes until the final step).
class ImageWriter {
 public:
  ImageWriter() = default;
  ~ImageWriter();
  ImageWriter(const ImageWriter&) = delete;
  ImageWriter& operator=(const ImageWriter&) = delete;

  /// Creates/truncates `path` and reserves the header slot.
  Status Open(const std::string& path);

  void BeginSection(SectionId id);

  // --- primitives, valid between BeginSection and EndSection ----------
  void PutU8(uint8_t v) {
    SEDA_DCHECK(in_section_) << "Put outside BeginSection/EndSection";
    sink_->push_back(static_cast<char>(v));
  }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }  // exact bit pattern
  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  /// Length-prefixed (u32 count) flat little-endian u32 array — the layout
  /// bulk segments (path ids, Dewey components, positions) use, readable as
  /// one contiguous span.
  void PutU32Array(const std::vector<uint32_t>& values) {
    PutU32(static_cast<uint32_t>(values.size()));
    PutRaw(values.data(), values.size() * sizeof(uint32_t));
  }
  /// PutU32Array over raw memory — lets zero-copy views (graph/csr.h
  /// U32View) round-trip without re-vectorizing.
  void PutU32Span(const uint32_t* values, size_t count) {
    PutU32(static_cast<uint32_t>(count));
    if (count > 0) PutRaw(values, count * sizeof(uint32_t));
  }

  /// Redirects subsequent Puts into a standalone blob; EndBlob() emits it as
  /// a u64-length-prefixed unit. Readers can skip blobs without decoding
  /// them, which is what lets the store section materialize documents in
  /// parallel. Blobs do not nest.
  void BeginBlob() {
    SEDA_DCHECK(sink_ == &buffer_) << "blobs do not nest";
    blob_.clear();
    sink_ = &blob_;
  }
  void EndBlob() {
    SEDA_DCHECK(sink_ == &blob_) << "EndBlob without BeginBlob";
    sink_ = &buffer_;
    PutU64(blob_.size());
    buffer_.append(blob_);
  }

  /// Checksums and flushes the buffered section at an aligned offset.
  Status EndSection();

  /// Appends the section table, then rewrites the header with `epoch` and the
  /// final file size. The writer is closed afterwards.
  Status Finish(uint64_t epoch);

 private:
  void PutRaw(const void* data, size_t size) {
    SEDA_DCHECK(in_section_) << "Put outside BeginSection/EndSection";
    const char* bytes = static_cast<const char*>(data);
    sink_->append(bytes, size);
  }
  Status WritePadded(const void* data, size_t size);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string buffer_;
  std::string blob_;
  std::string* sink_ = &buffer_;
  SectionId current_id_ = SectionId::kOptions;
  bool in_section_ = false;
  uint64_t offset_ = 0;  ///< next write offset (always aligned outside flush)
  std::vector<SectionEntry> sections_;
};

}  // namespace seda::persist

#endif  // SEDA_PERSIST_WRITER_H_
