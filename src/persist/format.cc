#include "persist/format.h"

#include <array>
#include <cstring>

namespace seda::persist {

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kOptions:
      return "options";
    case SectionId::kStorePaths:
      return "store-paths";
    case SectionId::kStoreDocs:
      return "store-docs";
    case SectionId::kGraphEdges:
      return "graph-edges";
    case SectionId::kIndexTerms:
      return "index-terms";
    case SectionId::kIndexPaths:
      return "index-paths";
    case SectionId::kDataguides:
      return "dataguides";
    case SectionId::kGraphCsr:
      return "graph-csr";
    case SectionId::kColumns:
      return "columns";
  }
  return "unknown";
}

namespace {

/// Slice-by-8 CRC32 tables: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte seen k positions earlier — letting the hot loop
/// fold 8 input bytes per iteration. Validating a snapshot image CRCs every
/// section, so this runs over the whole file on each Open.
struct CrcTables {
  uint32_t table[8][256];
  CrcTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      table[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = table[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = (crc >> 8) ^ table[0][crc & 0xFFu];
        table[k][i] = crc;
      }
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const CrcTables tables;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= crc;
    crc = tables.table[0][(hi >> 24) & 0xFFu] ^
          tables.table[1][(hi >> 16) & 0xFFu] ^
          tables.table[2][(hi >> 8) & 0xFFu] ^
          tables.table[3][hi & 0xFFu] ^
          tables.table[4][(lo >> 24) & 0xFFu] ^
          tables.table[5][(lo >> 16) & 0xFFu] ^
          tables.table[6][(lo >> 8) & 0xFFu] ^
          tables.table[7][lo & 0xFFu];
    bytes += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tables.table[0][(crc ^ *bytes) & 0xFFu];
    ++bytes;
    --size;
  }
  return ~crc;
}

}  // namespace seda::persist
