#ifndef SEDA_PERSIST_FORMAT_H_
#define SEDA_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace seda::persist {

/// On-disk snapshot image layout (version 1):
///
///   [FileHeader: 64 bytes]
///   [section 0 payload, 64-byte aligned]
///   [section 1 payload, 64-byte aligned]
///   ...
///   [section table: section_count * SectionEntry, 64-byte aligned]
///
/// All integers are little-endian, fixed width. The header carries an
/// endianness tag so a big-endian reader rejects the image instead of
/// mis-decoding it. Every section (and the header itself) is covered by a
/// CRC32, so truncation and bit-rot surface as clean Status errors rather
/// than undefined behaviour. Sections are offset-addressed through the table
/// and alignment-padded, so a reader can mmap the file read-only and decode
/// each section directly out of the mapping (or hand flat segments to typed
/// views) without any intermediate buffering.

/// "SEDAIMG" + format generation byte.
inline constexpr uint8_t kMagic[8] = {'S', 'E', 'D', 'A', 'I', 'M', 'G', 1};

/// Bumped on any incompatible layout change; readers reject other versions.
inline constexpr uint32_t kFormatVersion = 1;

/// Written natively by the writer; reads as 0x04030201 on a wrong-endian
/// reader, which then rejects the image.
inline constexpr uint32_t kEndianTag = 0x01020304u;

/// Alignment of every section payload and the section table.
inline constexpr size_t kSectionAlignment = 64;

/// Section identifiers. Order in the file follows write order; readers locate
/// sections by id through the table, so new sections can be appended without
/// breaking old layouts within a format version.
enum class SectionId : uint32_t {
  kOptions = 1,     ///< epoch + SedaOptions (incl. value edges, topk options)
  kStorePaths = 2,  ///< PathDictionary: path strings + occurrence statistics
  kStoreDocs = 3,   ///< parsed documents (preorder trees) + per-doc path sets
  kGraphEdges = 4,  ///< data-graph non-tree edge log, insertion order
  kIndexTerms = 5,  ///< term -> node postings, document frequencies, max tf
  kIndexPaths = 6,  ///< term -> path postings/counts, path -> nodes table
  kDataguides = 7,  ///< dataguide summary: guides, stats, path-level links
  kGraphCsr = 8,    ///< CSR graph-kernel arrays (all-u32, mapped zero-copy);
                    ///< optional — absent sections are rebuilt from the edge
                    ///< log, so pre-CSR images load unchanged
  kColumns = 9,     ///< schema-inferred columnar projections (src/column/):
                    ///< flat row/dictionary arrays mapped zero-copy; optional
                    ///< — absent sections are rebuilt from the document
                    ///< trees, so pre-column images load unchanged
};

const char* SectionName(SectionId id);

/// Fixed-size file header, written at offset 0.
struct FileHeader {
  uint8_t magic[8];
  uint32_t format_version = 0;
  uint32_t endian_tag = 0;
  uint64_t epoch = 0;
  uint64_t section_count = 0;
  uint64_t section_table_offset = 0;
  uint64_t file_size = 0;
  uint32_t header_crc = 0;  ///< CRC32 of the 48 bytes preceding this field
  uint32_t reserved = 0;
  uint8_t pad[8] = {0};
};
static_assert(sizeof(FileHeader) == 64, "header layout is part of the format");

/// One section-table entry.
struct SectionEntry {
  uint32_t id = 0;        ///< SectionId
  uint32_t reserved = 0;
  uint64_t offset = 0;    ///< absolute file offset, kSectionAlignment-aligned
  uint64_t size = 0;      ///< payload bytes (excluding alignment padding)
  uint32_t crc = 0;       ///< CRC32 of the payload bytes
  uint32_t pad = 0;
};
static_assert(sizeof(SectionEntry) == 32, "table layout is part of the format");

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum zip/zlib use.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace seda::persist

#endif  // SEDA_PERSIST_FORMAT_H_
