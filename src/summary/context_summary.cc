#include "summary/context_summary.h"

#include <algorithm>

#include "common/strings.h"
#include "text/analyzer.h"

namespace seda::summary {

uint64_t ContextSummary::CombinationCount() const {
  uint64_t combos = 1;
  for (const ContextBucket& bucket : buckets) {
    combos *= static_cast<uint64_t>(bucket.entries.size());
  }
  return combos;
}

std::string ContextSummary::ToString() const {
  std::string out;
  for (const ContextBucket& bucket : buckets) {
    out += "term " + bucket.term_text + ":\n";
    for (const ContextEntry& entry : bucket.entries) {
      out += "  " + entry.path_text + "  (docs=" + std::to_string(entry.doc_count) +
             ", nodes=" + std::to_string(entry.node_count) + ")\n";
    }
  }
  return out;
}

ContextBucket ContextSummaryGenerator::GenerateBucket(
    const query::QueryTerm& term,
    const std::vector<store::PathId>* resolved_context) const {
  ContextBucket bucket;
  bucket.term_text = term.ToString();
  const store::PathDictionary& dict = index_->store().paths();

  // Path candidates from the search query via the Fig. 8 index.
  std::vector<store::PathId> search_paths;
  if (term.search && term.search->kind != text::TextExpr::Kind::kAll) {
    search_paths = index_->EvaluatePaths(*term.search);
  } else {
    search_paths = index_->EvaluatePaths(*text::TextExpr::All());
  }

  // Context constraint (§5): full path probes via its last tag + exact path
  // filter; tag pattern probes via the tag. The resolution is reused from
  // the engine's candidate set when the caller already has it.
  std::vector<store::PathId> allowed;
  bool constrained = !term.context.unrestricted();
  if (constrained) {
    allowed = resolved_context != nullptr ? *resolved_context
                                          : term.context.ResolvePathIds(dict);
  }

  std::vector<store::PathId> result;
  if (constrained) {
    std::set_intersection(search_paths.begin(), search_paths.end(), allowed.begin(),
                          allowed.end(), std::back_inserter(result));
  } else {
    result = std::move(search_paths);
  }

  for (store::PathId pid : result) {
    ContextEntry entry;
    entry.path = pid;
    entry.path_text = dict.PathString(pid);
    entry.doc_count = dict.DocCount(pid);
    entry.node_count = dict.NodeCount(pid);
    bucket.entries.push_back(std::move(entry));
  }
  // Sorted by frequency in the entire data collection (paper §5).
  std::sort(bucket.entries.begin(), bucket.entries.end(),
            [](const ContextEntry& a, const ContextEntry& b) {
              if (a.doc_count != b.doc_count) return a.doc_count > b.doc_count;
              if (a.node_count != b.node_count) return a.node_count > b.node_count;
              return a.path_text < b.path_text;
            });
  return bucket;
}

ContextSummary ContextSummaryGenerator::Generate(const query::Query& query) const {
  ContextSummary summary;
  for (const query::QueryTerm& term : query.terms) {
    summary.buckets.push_back(GenerateBucket(term));
  }
  return summary;
}

ContextSummary ContextSummaryGenerator::Generate(
    const query::Query& query,
    const std::vector<const std::vector<store::PathId>*>& resolved_contexts)
    const {
  ContextSummary summary;
  for (size_t i = 0; i < query.terms.size(); ++i) {
    const std::vector<store::PathId>* resolved =
        i < resolved_contexts.size() ? resolved_contexts[i] : nullptr;
    summary.buckets.push_back(GenerateBucket(query.terms[i], resolved));
  }
  return summary;
}

}  // namespace seda::summary
