#ifndef SEDA_SUMMARY_CONNECTION_SUMMARY_H_
#define SEDA_SUMMARY_CONNECTION_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "topk/topk.h"

namespace seda::summary {

/// One candidate connection between two query terms, discovered on the
/// dataguide summary and validated against the top-k result instances.
struct ConnectionEntry {
  size_t term_a = 0;  ///< query term indices
  size_t term_b = 0;
  dataguide::Connection connection;
  /// Number of top-k result tuples whose (a, b) nodes instantiate this
  /// connection (same step length through the data graph).
  uint64_t instance_count = 0;
  /// True when the connection comes from the dataguide but no scanned
  /// instance realizes it — the paper's "false positive" case (§6.1): either
  /// keyword constraints exclude it or a dataguide merge fabricated it.
  bool false_positive = false;
};

/// The connection summary of a query (§6): pairwise connections between the
/// contexts matched by the top-k results.
struct ConnectionSummary {
  std::vector<ConnectionEntry> entries;

  uint64_t FalsePositiveCount() const;
  std::string ToString() const;
};

/// Computes connection summaries per the paper's §6.1 algorithm: map top-k
/// result nodes onto dataguide nodes by root-to-leaf path, enumerate
/// connections between the dataguide nodes (shortest first, using the
/// dataguide's connection cache), then count instances per connection in the
/// top-k tuples to surface false positives.
class ConnectionSummaryGenerator {
 public:
  ConnectionSummaryGenerator(const dataguide::DataguideCollection* guides,
                             const graph::DataGraph* graph)
      : guides_(guides), graph_(graph) {}

  struct Options {
    size_t max_connection_len = 6;
    size_t max_connections_per_pair = 8;
    /// Work budget per instance-validation BFS (DataGraph::ShortestPath
    /// visits). On a dense value-edge mesh an unbudgeted search floods the
    /// whole store once per top-k tuple pair — the same hub cliff the top-k
    /// engine caps — so a pair whose shortest path is not found within the
    /// budget counts as unconnected. 0 = unlimited.
    size_t max_path_visits = 2048;
  };

  ConnectionSummary Generate(const std::vector<topk::ScoredTuple>& topk_results,
                             const Options& options) const;
  ConnectionSummary Generate(const std::vector<topk::ScoredTuple>& topk_results) const {
    return Generate(topk_results, Options{});
  }

 private:
  const dataguide::DataguideCollection* guides_;
  const graph::DataGraph* graph_;
};

}  // namespace seda::summary

#endif  // SEDA_SUMMARY_CONNECTION_SUMMARY_H_
