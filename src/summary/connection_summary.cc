#include "summary/connection_summary.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace seda::summary {

namespace {

/// Abstracts a concrete node path (from DataGraph::ShortestPath) to a
/// path-level connection signature comparable with dataguide connections.
std::optional<std::string> AbstractInstancePath(
    const std::vector<store::NodeId>& nodes, const graph::DataGraph& graph) {
  if (nodes.empty()) return std::nullopt;
  const store::DocumentStore& store = graph.store();
  xml::Node* first = store.GetNode(nodes.front());
  if (first == nullptr) return std::nullopt;

  dataguide::Connection conn;
  conn.from_path = first->ContextPath();
  for (size_t i = 1; i < nodes.size(); ++i) {
    const store::NodeId& prev = nodes[i - 1];
    const store::NodeId& cur = nodes[i];
    xml::Node* cur_node = store.GetNode(cur);
    if (cur_node == nullptr) return std::nullopt;
    dataguide::Connection::Step step;
    step.path = cur_node->ContextPath();
    if (prev.doc == cur.doc && cur.dewey == prev.dewey.Parent()) {
      step.move = dataguide::Connection::Move::kUp;
    } else if (prev.doc == cur.doc && prev.dewey == cur.dewey.Parent()) {
      step.move = dataguide::Connection::Move::kDown;
    } else {
      step.move = dataguide::Connection::Move::kLink;
      for (const graph::Edge& edge : graph.NonTreeEdges(prev)) {
        if (edge.to == cur || edge.from == cur) {
          step.label = edge.label;
          break;
        }
      }
    }
    conn.steps.push_back(std::move(step));
  }
  return conn.Signature();
}

}  // namespace

uint64_t ConnectionSummary::FalsePositiveCount() const {
  uint64_t count = 0;
  for (const ConnectionEntry& entry : entries) {
    if (entry.false_positive) ++count;
  }
  return count;
}

std::string ConnectionSummary::ToString() const {
  std::string out;
  for (const ConnectionEntry& entry : entries) {
    out += "terms (" + std::to_string(entry.term_a) + "," +
           std::to_string(entry.term_b) + "): " + entry.connection.ToString() +
           "  [instances=" + std::to_string(entry.instance_count) +
           (entry.false_positive ? ", FALSE POSITIVE" : "") + "]\n";
  }
  return out;
}

ConnectionSummary ConnectionSummaryGenerator::Generate(
    const std::vector<topk::ScoredTuple>& topk_results, const Options& options) const {
  ConnectionSummary summary;
  if (topk_results.empty()) return summary;
  const store::DocumentStore& store = graph_->store();
  const size_t m = topk_results.front().nodes.size();

  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      // Distinct path pairs observed between terms a and b in the top-k.
      std::set<std::pair<std::string, std::string>> path_pairs;
      // Instance connection signatures with counts.
      std::map<std::string, uint64_t> instance_signatures;

      for (const topk::ScoredTuple& tuple : topk_results) {
        xml::Node* node_a = store.GetNode(tuple.nodes[a].node);
        xml::Node* node_b = store.GetNode(tuple.nodes[b].node);
        if (node_a == nullptr || node_b == nullptr) continue;
        path_pairs.emplace(node_a->ContextPath(), node_b->ContextPath());
        auto instance_path = graph_->ShortestPath(
            tuple.nodes[a].node, tuple.nodes[b].node,
            options.max_connection_len, options.max_path_visits);
        if (instance_path.empty()) continue;
        auto signature = AbstractInstancePath(instance_path, *graph_);
        if (signature) instance_signatures[*signature] += 1;
      }

      // Enumerate dataguide-level connections for every observed path pair.
      std::set<std::string> emitted;
      for (const auto& [path_a, path_b] : path_pairs) {
        auto connections = guides_->FindConnections(
            path_a, path_b, options.max_connection_len,
            options.max_connections_per_pair);
        for (dataguide::Connection& conn : connections) {
          std::string signature = conn.Signature();
          if (!emitted.insert(signature).second) continue;
          ConnectionEntry entry;
          entry.term_a = a;
          entry.term_b = b;
          entry.connection = std::move(conn);
          auto it = instance_signatures.find(signature);
          entry.instance_count = it == instance_signatures.end() ? 0 : it->second;
          entry.false_positive = entry.instance_count == 0;
          summary.entries.push_back(std::move(entry));
        }
      }
    }
  }
  // Shortest, most-instantiated connections first.
  std::sort(summary.entries.begin(), summary.entries.end(),
            [](const ConnectionEntry& x, const ConnectionEntry& y) {
              if (x.term_a != y.term_a) return x.term_a < y.term_a;
              if (x.term_b != y.term_b) return x.term_b < y.term_b;
              if (x.connection.Length() != y.connection.Length()) {
                return x.connection.Length() < y.connection.Length();
              }
              return x.instance_count > y.instance_count;
            });
  return summary;
}

}  // namespace seda::summary
