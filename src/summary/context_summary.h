#ifndef SEDA_SUMMARY_CONTEXT_SUMMARY_H_
#define SEDA_SUMMARY_CONTEXT_SUMMARY_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "text/inverted_index.h"

namespace seda::summary {

/// One context bucket entry: a distinct root-to-leaf path a query term
/// matches, with its *absolute* collection frequencies. The paper (§5) is
/// explicit that SEDA shows the frequency of the path in the whole
/// collection, irrespective of the keyword — unlike faceted search.
struct ContextEntry {
  store::PathId path = store::kInvalidPathId;
  std::string path_text;
  uint64_t doc_count = 0;   ///< documents containing the path
  uint64_t node_count = 0;  ///< node occurrences of the path
};

/// The context bucket of one query term: all distinct paths the term appears
/// in, sorted by descending document frequency.
struct ContextBucket {
  std::string term_text;
  std::vector<ContextEntry> entries;
};

/// Context summary of a whole query: one bucket per term (§5).
struct ContextSummary {
  std::vector<ContextBucket> buckets;

  /// Number of distinct context combinations (the paper counts 12 for
  /// Query 1's unrefined form: 3 × 2 × 2).
  uint64_t CombinationCount() const;

  std::string ToString() const;
};

/// Computes context buckets via the Figure 8 path index: the search query is
/// evaluated against keyword->path postings; when the term carries a context,
/// the probe is constrained the way §5 describes (full path => probe with its
/// last tag; tag pattern => probe with the tag), and frequencies are read
/// from the path dictionary (the "document store" side).
class ContextSummaryGenerator {
 public:
  explicit ContextSummaryGenerator(const text::InvertedIndex* index)
      : index_(index) {}

  ContextSummary Generate(const query::Query& query) const;

  /// Generate() consuming per-term context path sets already resolved by the
  /// execution engine (exec::CandidateSet::context_paths), so a restricted
  /// context is resolved once per query instead of once per consumer. Each
  /// entry may be null (resolve locally); non-null entries must be the
  /// sorted ResolvePathIds output for the corresponding term.
  ContextSummary Generate(
      const query::Query& query,
      const std::vector<const std::vector<store::PathId>*>& resolved_contexts)
      const;

  /// Bucket for a single term (exposed for tests and for the refinement
  /// loop, which regenerates buckets after the user picks contexts).
  ContextBucket GenerateBucket(const query::QueryTerm& term) const {
    return GenerateBucket(term, nullptr);
  }
  ContextBucket GenerateBucket(
      const query::QueryTerm& term,
      const std::vector<store::PathId>* resolved_context) const;

 private:
  const text::InvertedIndex* index_;
};

}  // namespace seda::summary

#endif  // SEDA_SUMMARY_CONTEXT_SUMMARY_H_
