#ifndef SEDA_GRAPH_DATA_GRAPH_H_
#define SEDA_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/document_store.h"

namespace seda {
class ThreadPool;
}

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::graph {

/// The four relationship kinds of Definition 2 in the paper.
enum class EdgeType {
  kParentChild,  ///< (1) parent/child (implicit; materialized on demand)
  kIdRef,        ///< (2) IDREF attribute -> node with matching ID attribute
  kXLink,        ///< (3) XLink/XPointer href -> target node
  kValueBased,   ///< (4) primary-key / foreign-key equal-value relationship
};

const char* EdgeTypeName(EdgeType type);

/// A directed non-tree edge of the data graph. `label` carries the semantic
/// relationship name shown on the dashed edges of the paper's Figure 1
/// (e.g. "bordering", "trade_partner").
struct Edge {
  store::NodeId from;
  store::NodeId to;
  EdgeType type = EdgeType::kIdRef;
  std::string label;
};

class Csr;

/// Graph-kernel work counters, aggregated per scored tuple into
/// topk::SearchStats (deterministically: the parallel scoring batch sums
/// per-tuple counters in enumeration order).
struct GraphStats {
  uint64_t bfs_expansions = 0;      ///< nodes expanded by (legacy or CSR) BFS
  uint64_t intersection_probes = 0; ///< sorted-row elements examined
  uint64_t sketch_hits = 0;         ///< distance queries answered by a sketch
};

/// Tuning for the CSR kernel build (see graph/csr.h for semantics).
struct CsrOptions {
  uint32_t sketch_min_degree = 32;
  uint32_t sketch_max_count = 8;
};

/// Which kernel answers distance queries. kAuto is the production setting;
/// the others exist for the equivalence tests and the bench ablation.
enum class GraphKernelMode {
  kAuto,          ///< sketches, then intersection, then budgeted CSR BFS
  kLegacy,        ///< hash-map ForEachNeighbor BFS (pre-CSR engine)
  kCsrBfs,        ///< CSR arrays, BFS only (no distance-1/2 fast paths)
  kCsrIntersect,  ///< CSR + intersection fast paths, no sketches
};

/// The data graph G(V, E) of an XML collection (paper Definition 2): V is the
/// set of element/attribute nodes in the DocumentStore; parent/child edges are
/// implicit in the stored trees, while IDREF, XLink and value-based edges are
/// materialized in adjacency lists here.
///
/// Epoch semantics: a DataGraph is built fresh for every snapshot commit
/// (core/snapshot.cc) and is the one ingestion stage incremental commits
/// never extend — a newly committed document can carry the id an older
/// document's dangling IDREF/XLink points at, and value-based edges can span
/// epochs, so only a full rescan reproduces a from-scratch build exactly.
/// After construction the graph is immutable and all read entry points are
/// const and thread-safe.
class DataGraph {
 public:
  // Both out of line: csr_ is an incomplete type here.
  explicit DataGraph(const store::DocumentStore* store);
  ~DataGraph();

  const store::DocumentStore& store() const { return *store_; }

  /// Adds an explicit non-tree edge (both directions are traversable; the
  /// reverse direction is kept in a separate adjacency list).
  void AddEdge(const store::NodeId& from, const store::NodeId& to, EdgeType type,
               const std::string& label);

  /// Scans all documents and adds IDREF edges: any attribute named "idref"
  /// (or "idrefs", whitespace-separated) links to the element carrying an
  /// "id" attribute with the same value. Returns the number of edges added.
  /// The document scan fans out over `pool` when given; edges are committed
  /// in document order either way, so results are scheduling-independent.
  size_t ResolveIdRefs(ThreadPool* pool = nullptr);

  /// Scans for XLink-style attributes ("xlink:href" or "href") whose value is
  /// "#id" or "doc-name#id" and links to the target element. Parallel scan as
  /// in ResolveIdRefs.
  size_t ResolveXLinks(ThreadPool* pool = nullptr);

  /// Resolves both link kinds with a single shared id-target scan — cheaper
  /// than calling ResolveIdRefs + ResolveXLinks back to back, which would
  /// each rebuild the same id -> node map. Returns total edges added.
  size_t ResolveLinks(bool idrefs, bool xlinks, ThreadPool* pool = nullptr);

  /// Adds value-based (PK/FK) edges between nodes at `pk_path` and nodes at
  /// `fk_path` with equal content. Labels them `label`. Returns edges added.
  size_t AddValueBasedEdges(const std::string& pk_path, const std::string& fk_path,
                            const std::string& label);

  /// Non-tree edges leaving `node` (both stored directions).
  std::vector<Edge> NonTreeEdges(const store::NodeId& node) const;

  /// Visits the same edges as NonTreeEdges (same order) without
  /// materializing the vector — the top-k cross-document borrow runs this
  /// once per candidate, and the Edge copies (two Dewey vectors + a label
  /// string each) were a measurable share of its time.
  template <typename Fn>
  void ForEachNonTreeEdge(const store::NodeId& node, const Fn& fn) const {
    if (auto it = out_edges_.find(node); it != out_edges_.end()) {
      for (uint32_t e : it->second) fn(edges_[e]);
    }
    if (auto it = in_edges_.find(node); it != in_edges_.end()) {
      for (uint32_t e : it->second) fn(edges_[e]);
    }
  }

  /// Non-tree degree of `node` (out + in) without materializing the edges —
  /// the hub test TopKSearcher's cross-document borrow runs per edge.
  size_t Degree(const store::NodeId& node) const;

  size_t EdgeCount() const { return edges_.size(); }

  /// Every non-tree edge in insertion (document) order — the deterministic
  /// log persistence replays so a loaded graph's adjacency lists are
  /// byte-identical to the ones the resolve scans built.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Builds the CSR kernel layer (graph/csr.h) from the current edge log;
  /// called once per snapshot commit, after all edges are resolved. Returns
  /// false (leaving the graph on the legacy walker) when some edge endpoint
  /// does not resolve to a stored non-text node. Not thread-safe — part of
  /// construction, before the graph is published.
  bool BuildCsr(const CsrOptions& options = {});
  const Csr* csr() const { return csr_.get(); }

  /// Kernel selection for the ablation bench and equivalence tests; queries
  /// fall back to the legacy walker automatically whenever the CSR layer is
  /// absent or cannot resolve an endpoint. Set-up time only (not
  /// thread-safe, not persisted).
  void set_kernel_mode(GraphKernelMode mode) { kernel_mode_ = mode; }
  GraphKernelMode kernel_mode() const { return kernel_mode_; }

  /// Persistence hooks (src/persist/): writes the edge log with a label
  /// string pool (plus the CSR arrays when built) / reconstructs a graph
  /// over `store` by replaying the log, mapping the CSR section zero-copy —
  /// `image` is retained by the kernels — or rebuilding it when absent
  /// (pre-CSR images load unchanged; no format break).
  Status SaveTo(persist::ImageWriter* writer) const;
  static Result<std::unique_ptr<DataGraph>> LoadFrom(
      std::shared_ptr<const persist::MappedImage> image,
      const store::DocumentStore* store);

  /// All neighbors of `node`: parent, children, plus non-tree edges.
  std::vector<store::NodeId> Neighbors(const store::NodeId& node) const;

  /// Visits every neighbor in exactly Neighbors() order without
  /// materializing the vector — the BFS hot path runs this once per expanded
  /// node, and on mesh-like graphs the allocation-free walk is what keeps a
  /// budgeted ShortestPath in the microsecond range. `fn` returns false to
  /// stop early.
  template <typename Fn>
  void ForEachNeighbor(const store::NodeId& node, const Fn& fn) const {
    xml::Node* n = store_->GetNode(node);
    if (n == nullptr) return;
    if (n->parent() != nullptr) {
      if (!fn(store::NodeId{node.doc, n->parent()->dewey()})) return;
    }
    for (const auto& child : n->children()) {
      if (child->kind() == xml::NodeKind::kText) continue;
      if (!fn(store::NodeId{node.doc, child->dewey()})) return;
    }
    if (auto it = out_edges_.find(node); it != out_edges_.end()) {
      for (uint32_t e : it->second) {
        if (!fn(edges_[e].to)) return;
      }
    }
    if (auto it = in_edges_.find(node); it != in_edges_.end()) {
      for (uint32_t e : it->second) {
        if (!fn(edges_[e].from)) return;
      }
    }
  }

  /// Audit hook: visits every adjacency-list entry as (node, is_out,
  /// edge_log_index). The audit layer uses it to prove both maps hold only
  /// in-bounds indices and that every logged edge appears exactly once per
  /// direction; it deliberately exposes raw indices (not Edges) so a
  /// corrupted index is observable instead of crashing inside the walk.
  template <typename Fn>
  void ForEachAdjacency(const Fn& fn) const {
    for (const auto& [node, indices] : out_edges_) {
      for (uint32_t e : indices) fn(node, true, e);
    }
    for (const auto& [node, indices] : in_edges_) {
      for (uint32_t e : indices) fn(node, false, e);
    }
  }

  /// Length of the shortest path between two nodes traversing parent/child
  /// and non-tree edges, bounded by `max_depth` (BFS). nullopt when not
  /// connected within the bound. `max_visits` (0 = unlimited) additionally
  /// caps the nodes the BFS may expand: in a collection whose value-edge
  /// mesh puts everything within a few hops of everything, a depth bound
  /// alone still floods the whole store per call (the ROADMAP hub cliff), so
  /// callers scoring many tuples pass a work budget and treat an exhausted
  /// search as "not connected".
  std::optional<size_t> ShortestPathLength(const store::NodeId& a,
                                           const store::NodeId& b,
                                           size_t max_depth,
                                           size_t max_visits = 0,
                                           GraphStats* stats = nullptr) const;

  /// Shortest path (sequence of nodes, inclusive of endpoints) or empty.
  std::vector<store::NodeId> ShortestPath(const store::NodeId& a,
                                          const store::NodeId& b,
                                          size_t max_depth,
                                          size_t max_visits = 0,
                                          GraphStats* stats = nullptr) const;

  /// Size (edge count) of the minimal connected subgraph containing all
  /// `nodes`. For nodes within one document this is the exact Steiner-tree
  /// size in the document tree (computed via the Euler-order identity);
  /// across documents, pairwise shortest paths are added. Returns nullopt if
  /// the tuple cannot be connected within `max_depth` per hop.
  ///
  /// This is the "compactness of the graph representing a tuple of nodes"
  /// that drives the paper's top-k scoring function (§4). Within-document
  /// connections use the closed-form Euler identity (no search); only
  /// cross-document hops run BFS, each bounded by `max_visits` (see
  /// ShortestPathLength).
  std::optional<size_t> ConnectionSize(const std::vector<store::NodeId>& nodes,
                                       size_t max_depth = 12,
                                       size_t max_visits = 0,
                                       GraphStats* stats = nullptr) const;

 private:
  /// id attribute value -> element carrying it (first occurrence wins).
  using IdTargetMap = std::unordered_map<std::string, store::NodeId>;

  size_t ResolveIdRefs(const IdTargetMap& targets, ThreadPool* pool);
  size_t ResolveXLinks(const IdTargetMap& targets, ThreadPool* pool);

  /// The one BFS walker behind ShortestPathLength and ShortestPath (their
  /// bodies had drifted apart): hash-map visited set over ForEachNeighbor.
  /// Fills `path_out` (endpoints inclusive) when non-null and found. Used
  /// when no CSR layer exists, when kernel_mode_ is kLegacy, or when an
  /// endpoint has no vertex.
  std::optional<size_t> LegacyBfs(const store::NodeId& a,
                                  const store::NodeId& b, size_t max_depth,
                                  size_t max_visits,
                                  std::vector<store::NodeId>* path_out,
                                  GraphStats* stats) const;

  const store::DocumentStore* store_;
  /// Each edge is stored once, in the insertion-order log; the adjacency
  /// maps hold indices into it (an edge used to be copied into both maps,
  /// which tripled graph memory and image-load time).
  std::unordered_map<store::NodeId, std::vector<uint32_t>, store::NodeIdHasher>
      out_edges_;
  std::unordered_map<store::NodeId, std::vector<uint32_t>, store::NodeIdHasher>
      in_edges_;
  /// Insertion-order log of every AddEdge call (see edges()).
  std::vector<Edge> edges_;
  /// CSR kernel layer (graph/csr.h), built at commit / image load; null on a
  /// hand-assembled graph that never called BuildCsr.
  std::unique_ptr<Csr> csr_;
  GraphKernelMode kernel_mode_ = GraphKernelMode::kAuto;
};

}  // namespace seda::graph

#endif  // SEDA_GRAPH_DATA_GRAPH_H_
