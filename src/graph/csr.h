#ifndef SEDA_GRAPH_CSR_H_
#define SEDA_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "store/document_store.h"

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::graph {

/// Flat u32 array that is either owned (built at Commit or decoded on a
/// pre-CSR image) or a zero-copy view into a mapped snapshot image whose
/// lifetime the owning Csr pins.
class U32View {
 public:
  U32View() = default;
  void Own(std::vector<uint32_t> values) {
    owned_ = std::move(values);
    data_ = owned_.data();
    size_ = owned_.size();
  }
  void Borrow(const uint32_t* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = size;
  }
  const uint32_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
  std::vector<uint32_t> owned_;
};

/// Index-based graph kernels over the data graph (ROADMAP "CSR graph kernels"
/// item, following the TriangleCounting playbook): every non-text node gets a
/// dense uint32 vertex number in document order, and adjacency — tree edges
/// plus both directions of the non-tree edge log — lives in two CSR layouts:
///
///   offsets/adjacency:               rows in exactly ForEachNeighbor order
///                                    (parent, children, out edges, in edges,
///                                    duplicates preserved), so a frontier
///                                    BFS over the arrays visits nodes in the
///                                    same order as the hash-map walk and
///                                    returns byte-identical paths;
///   sorted_offsets/sorted_adjacency: rows sorted ascending and deduplicated,
///                                    for O(log d) membership tests and
///                                    linear/galloping intersection.
///
/// Distance-1/2 queries — the bulk of cross-document ConnectionSize hops, the
/// engine's hottest path — are answered exactly by sorted-row intersection
/// (galloping for skewed degree pairs, a generation-stamped scratch bitmap
/// for hub-against-hub) or by precomputed 2-hop sketches for the hottest hub
/// vertices, with no BFS and no work-budget dependence; deeper queries fall
/// back to an allocation-free budgeted BFS with the exact visit accounting of
/// the legacy walker. All query entry points are const and thread-safe
/// (scratch is thread_local).
class Csr {
 public:
  /// Builds the arrays from the store's trees plus the non-tree edge log.
  /// Returns nullptr when some edge endpoint does not resolve to a stored
  /// non-text node (a graph only a hand-crafted test or hostile image
  /// produces) — callers then keep the hash-map walk.
  static std::unique_ptr<Csr> Build(const store::DocumentStore& store,
                                    const std::vector<Edge>& edges,
                                    const CsrOptions& options = {});

  /// Writes the arrays as the kGraphCsr image section (all-u32 layout, so
  /// every array stays 4-byte aligned for the zero-copy reopen).
  Status SaveTo(persist::ImageWriter* writer) const;

  /// Reconstructs kernels over a mapped image: bulk arrays are borrowed
  /// straight from the mapping (the Csr co-owns `image`), only the vertex
  /// numbering (node pointers) is rebuilt from the store. Every array is
  /// validated against the store and edge log before any kernel may run, so
  /// a hostile image fails with a clean ParseError.
  static Result<std::unique_ptr<Csr>> LoadFrom(
      std::shared_ptr<const persist::MappedImage> image,
      const store::DocumentStore& store, const std::vector<Edge>& edges);

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t edge_count() const { return edge_count_; }
  const CsrOptions& options() const { return options_; }

  /// Dense vertex of a node, or nullopt for text/nonexistent nodes. O(log n)
  /// binary search over the document's Dewey-ordered vertex range — vertex
  /// numbering is document order, which is Dewey-lexicographic order.
  std::optional<uint32_t> VertexOf(const store::NodeId& id) const;
  store::NodeId NodeIdOf(uint32_t v) const {
    return store::NodeId{doc_of_[v], node_of_[v]->dewey()};
  }

  // Row accessors (legacy = ForEachNeighbor order, duplicates preserved).
  const uint32_t* RowBegin(uint32_t v) const {
    return adjacency_.data() + offsets_[v];
  }
  const uint32_t* RowEnd(uint32_t v) const {
    return adjacency_.data() + offsets_[v + 1];
  }
  const uint32_t* SortedRowBegin(uint32_t v) const {
    return sorted_adjacency_.data() + sorted_offsets_[v];
  }
  const uint32_t* SortedRowEnd(uint32_t v) const {
    return sorted_adjacency_.data() + sorted_offsets_[v + 1];
  }
  /// Total degree (tree + non-tree, duplicates counted), O(1).
  uint32_t DegreeOf(uint32_t v) const { return offsets_[v + 1] - offsets_[v]; }
  /// Non-tree degree (out + in), O(1) — what the hub caps consult.
  uint32_t NonTreeDegreeOf(uint32_t v) const { return non_tree_degree_[v]; }

  size_t SketchCount() const { return sketch_hubs_.size(); }
  uint32_t SketchHub(size_t i) const { return sketch_hubs_[i]; }
  /// Index of v's sketch, or -1. Linear over the (tiny, capped) hub list.
  int SketchIndexOf(uint32_t v) const;
  /// True iff sketch `index` covers `v`, i.e. dist(hub, v) <= 2.
  bool SketchCovers(int index, uint32_t v) const {
    size_t word = static_cast<size_t>(index) * words_per_sketch_ + (v >> 5);
    return (sketch_bits_[word] >> (v & 31u)) & 1u;
  }

  /// Kernel results carry a resolved flag: false means an endpoint has no
  /// vertex (text or nonexistent node) and the caller must use the legacy
  /// walker — the only case the arrays cannot answer.
  struct Distance {
    bool resolved = false;
    std::optional<size_t> length;
  };
  struct Path {
    bool resolved = false;
    std::vector<store::NodeId> nodes;  ///< empty = not connected
  };

  /// Budgeted shortest-path length with the legacy walker's exact accounting
  /// when BFS runs. Under kCsrIntersect/kAuto, distance <= 2 is answered
  /// exactly by intersection/sketch first — those answers are budget- and
  /// depth-order-independent, which is what turns `max_connect_visits` into
  /// a pure optimization threshold for the dominant 1-hub-hop tuples.
  Distance ShortestPathLength(const store::NodeId& a, const store::NodeId& b,
                              size_t max_depth, size_t max_visits,
                              GraphKernelMode mode, GraphStats* stats) const;

  /// Shortest path inclusive of endpoints; the witness node of a distance-2
  /// fast-path answer is chosen to match the legacy BFS parent exactly.
  Path ShortestPath(const store::NodeId& a, const store::NodeId& b,
                    size_t max_depth, size_t max_visits, GraphKernelMode mode,
                    GraphStats* stats) const;

 private:
  Csr() = default;

  void Number(const store::DocumentStore& store);
  bool BuildAdjacency(const store::DocumentStore& store,
                      const std::vector<Edge>& edges);
  void BuildSorted();
  void BuildSketches();
  Status Validate(const std::vector<Edge>& edges) const;

  /// True iff dist(va, vb) == 1 (sorted-row membership on the smaller row).
  bool Adjacent(uint32_t va, uint32_t vb, GraphStats* stats) const;
  /// True iff the sorted rows of va and vb intersect (some common neighbor,
  /// i.e. dist <= 2 given non-adjacency).
  bool RowsIntersect(uint32_t va, uint32_t vb, GraphStats* stats) const;
  /// Exact dist<=2 test via the fast paths; nullopt when no sketch applies
  /// and `mode` does not allow intersection.
  std::optional<bool> WithinTwo(uint32_t va, uint32_t vb, GraphKernelMode mode,
                                GraphStats* stats) const;
  /// First legacy-order neighbor w of va with vb in w's sorted row — the
  /// parent the legacy BFS would have recorded for vb on a distance-2 path.
  std::optional<uint32_t> DistanceTwoWitness(uint32_t va, uint32_t vb,
                                             GraphStats* stats) const;

  CsrOptions options_;
  uint32_t num_vertices_ = 0;
  uint32_t edge_count_ = 0;
  uint32_t words_per_sketch_ = 0;

  /// Vertex -> node mapping, rebuilt from the store on every load (node
  /// pointers cannot be persisted); doc_base_[d] .. doc_base_[d+1] is the
  /// contiguous vertex range of document d.
  std::vector<const xml::Node*> node_of_;
  std::vector<store::DocId> doc_of_;
  std::vector<uint32_t> doc_base_;

  U32View offsets_;           ///< V+1
  U32View adjacency_;         ///< legacy ForEachNeighbor order
  U32View sorted_offsets_;    ///< V+1
  U32View sorted_adjacency_;  ///< ascending, deduplicated
  U32View non_tree_degree_;   ///< V
  std::vector<uint32_t> sketch_hubs_;
  U32View sketch_bits_;  ///< SketchCount() * words_per_sketch_ bitmap words

  /// Pins the mapping the borrowed views point into (zero-copy reopen).
  std::shared_ptr<const persist::MappedImage> image_;
};

}  // namespace seda::graph

#endif  // SEDA_GRAPH_CSR_H_
