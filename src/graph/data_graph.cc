#include "graph/data_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "graph/csr.h"
#include "persist/reader.h"
#include "persist/writer.h"

namespace seda::graph {

namespace {

/// Runs a per-document scan over the whole store, fanning documents out over
/// `pool`. Each document fills its own Shard (in node visit order); the
/// returned vector is indexed by DocId, so callers can merge shards in
/// document order and stay byte-identical to a sequential scan.
template <typename Shard, typename ScanFn>
std::vector<Shard> ScanDocuments(const store::DocumentStore& store,
                                 ThreadPool* pool, const ScanFn& scan) {
  std::vector<Shard> shards(store.DocumentCount());
  RunParallel(pool, store.DocumentCount(), [&](size_t d) {
    store::DocId doc = static_cast<store::DocId>(d);
    store.document(doc).ForEachNode([&](xml::Node* node) {
      scan(&shards[d], store::NodeId{doc, node->dewey()}, node);
    });
  });
  return shards;
}

/// Collects id -> NodeId for all elements carrying an "id" attribute. The
/// first occurrence in document order wins, matching the sequential scan.
std::unordered_map<std::string, store::NodeId> CollectIdTargets(
    const store::DocumentStore& store, ThreadPool* pool) {
  using IdShard = std::vector<std::pair<std::string, store::NodeId>>;
  std::vector<IdShard> shards = ScanDocuments<IdShard>(
      store, pool,
      [](IdShard* shard, const store::NodeId& id, xml::Node* node) {
        if (node->kind() != xml::NodeKind::kElement) return;
        for (const auto& child : node->children()) {
          if (child->kind() == xml::NodeKind::kAttribute &&
              ToLower(child->name()) == "id") {
            shard->emplace_back(child->text(), id);
          }
        }
      });
  std::unordered_map<std::string, store::NodeId> targets;
  for (const IdShard& shard : shards) {
    for (const auto& [value, id] : shard) targets.emplace(value, id);
  }
  return targets;
}

store::NodeId ParentOf(const store::NodeId& id) {
  return store::NodeId{id.doc, id.dewey.Parent()};
}

}  // namespace

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kParentChild:
      return "parent-child";
    case EdgeType::kIdRef:
      return "idref";
    case EdgeType::kXLink:
      return "xlink";
    case EdgeType::kValueBased:
      return "value-based";
  }
  return "unknown";
}

DataGraph::DataGraph(const store::DocumentStore* store) : store_(store) {}

DataGraph::~DataGraph() = default;

bool DataGraph::BuildCsr(const CsrOptions& options) {
  csr_ = Csr::Build(*store_, edges_, options);
  return csr_ != nullptr;
}

void DataGraph::AddEdge(const store::NodeId& from, const store::NodeId& to,
                        EdgeType type, const std::string& label) {
  uint32_t index = static_cast<uint32_t>(edges_.size());
  edges_.push_back(Edge{from, to, type, label});
  out_edges_[from].push_back(index);
  in_edges_[to].push_back(index);
}

Status DataGraph::SaveTo(persist::ImageWriter* writer) const {
  writer->BeginSection(persist::SectionId::kGraphEdges);

  // Labels repeat heavily (one per relationship name), so pool them.
  std::unordered_map<std::string, uint32_t> label_ids;
  std::vector<const std::string*> labels;
  for (const Edge& edge : edges_) {
    auto [it, inserted] =
        label_ids.emplace(edge.label, static_cast<uint32_t>(labels.size()));
    if (inserted) labels.push_back(&it->first);
  }
  writer->PutU32(static_cast<uint32_t>(labels.size()));
  for (const std::string* label : labels) writer->PutString(*label);

  writer->PutU64(edges_.size());
  for (const Edge& edge : edges_) {
    writer->PutU32(edge.from.doc);
    writer->PutU32Array(edge.from.dewey.components());
    writer->PutU32(edge.to.doc);
    writer->PutU32Array(edge.to.dewey.components());
    writer->PutU8(static_cast<uint8_t>(edge.type));
    writer->PutU32(label_ids[edge.label]);
  }
  SEDA_RETURN_IF_ERROR(writer->EndSection());
  // The CSR arrays ride along as their own (optional) section, mapped
  // zero-copy on reopen; readers of images without it rebuild from the log.
  if (csr_ != nullptr) {
    SEDA_RETURN_IF_ERROR(csr_->SaveTo(writer));
  }
  return Status::OK();
}

Result<std::unique_ptr<DataGraph>> DataGraph::LoadFrom(
    std::shared_ptr<const persist::MappedImage> image,
    const store::DocumentStore* store) {
  SEDA_ASSIGN_OR_RETURN(
      persist::SectionCursor cursor,
      persist::OpenSection(*image, persist::SectionId::kGraphEdges));
  auto graph = std::make_unique<DataGraph>(store);

  uint32_t label_count = cursor.GetU32();
  std::vector<std::string> labels;
  labels.reserve(cursor.BoundedCount(label_count, 4));
  for (uint32_t i = 0; i < label_count && !cursor.failed(); ++i) {
    labels.push_back(cursor.GetString());
  }

  uint64_t edge_count = cursor.GetU64();
  graph->edges_.reserve(cursor.BoundedCount(edge_count, 21));
  for (uint64_t i = 0; i < edge_count && !cursor.failed(); ++i) {
    store::NodeId from{cursor.GetU32(), xml::DeweyId(cursor.GetU32Array())};
    store::NodeId to{cursor.GetU32(), xml::DeweyId(cursor.GetU32Array())};
    uint8_t type = cursor.GetU8();
    uint32_t label = cursor.GetU32();
    if (type > static_cast<uint8_t>(EdgeType::kValueBased) ||
        label >= labels.size()) {
      return Status::ParseError("image graph edge record malformed");
    }
    graph->AddEdge(from, to, static_cast<EdgeType>(type), labels[label]);
  }
  SEDA_RETURN_IF_ERROR(cursor.status());
  if (image->HasSection(persist::SectionId::kGraphCsr)) {
    SEDA_ASSIGN_OR_RETURN(graph->csr_,
                          Csr::LoadFrom(image, *store, graph->edges_));
  } else {
    // Pre-CSR image: rebuild the kernels from the replayed log, so old
    // images answer through the same fast paths (no format break).
    graph->BuildCsr();
  }
  return graph;
}

size_t DataGraph::ResolveLinks(bool idrefs, bool xlinks, ThreadPool* pool) {
  if (!idrefs && !xlinks) return 0;
  auto targets = CollectIdTargets(*store_, pool);
  size_t added = 0;
  if (idrefs) added += ResolveIdRefs(targets, pool);
  if (xlinks) added += ResolveXLinks(targets, pool);
  return added;
}

size_t DataGraph::ResolveIdRefs(ThreadPool* pool) {
  return ResolveIdRefs(CollectIdTargets(*store_, pool), pool);
}

size_t DataGraph::ResolveIdRefs(const IdTargetMap& targets, ThreadPool* pool) {
  // Parallel stage: collect (owner, ref) candidates per document.
  struct RefCandidate {
    store::NodeId owner;
    std::string ref;
    std::string label;
  };
  using RefShard = std::vector<RefCandidate>;
  std::vector<RefShard> shards = ScanDocuments<RefShard>(
      *store_, pool,
      [this](RefShard* shard, const store::NodeId& id, xml::Node* node) {
        if (node->kind() != xml::NodeKind::kAttribute) return;
        std::string attr = ToLower(node->name());
        if (attr != "idref" && attr != "idrefs") return;
        store::NodeId owner = ParentOf(id);
        // The relationship label is the attribute's element name, matching
        // the labeled dashed edges of the paper's Figure 1.
        xml::Node* owner_node = store_->GetNode(owner);
        std::string label = owner_node != nullptr ? owner_node->name() : "idref";
        for (const std::string& ref : SplitSkipEmpty(node->text(), ' ')) {
          shard->push_back({owner, ref, label});
        }
      });
  // Sequential stage: commit edges in document order.
  size_t added = 0;
  for (const RefShard& shard : shards) {
    for (const RefCandidate& candidate : shard) {
      auto it = targets.find(candidate.ref);
      if (it == targets.end()) continue;  // dangling IDREF: tolerated
      AddEdge(candidate.owner, it->second, EdgeType::kIdRef, candidate.label);
      ++added;
    }
  }
  return added;
}

size_t DataGraph::ResolveXLinks(ThreadPool* pool) {
  return ResolveXLinks(CollectIdTargets(*store_, pool), pool);
}

size_t DataGraph::ResolveXLinks(const IdTargetMap& targets, ThreadPool* pool) {
  struct LinkCandidate {
    store::NodeId owner;
    std::string fragment;
    std::string label;
  };
  using LinkShard = std::vector<LinkCandidate>;
  std::vector<LinkShard> shards = ScanDocuments<LinkShard>(
      *store_, pool,
      [this](LinkShard* shard, const store::NodeId& id, xml::Node* node) {
        if (node->kind() != xml::NodeKind::kAttribute) return;
        std::string attr = ToLower(node->name());
        if (attr != "xlink:href" && attr != "href") return;
        const std::string& value = node->text();
        size_t hash_pos = value.find('#');
        if (hash_pos == std::string::npos) return;
        store::NodeId owner = ParentOf(id);
        xml::Node* owner_node = store_->GetNode(owner);
        std::string label = owner_node != nullptr ? owner_node->name() : "xlink";
        shard->push_back({owner, value.substr(hash_pos + 1), label});
      });
  size_t added = 0;
  for (const LinkShard& shard : shards) {
    for (const LinkCandidate& candidate : shard) {
      auto it = targets.find(candidate.fragment);
      if (it == targets.end()) continue;
      AddEdge(candidate.owner, it->second, EdgeType::kXLink, candidate.label);
      ++added;
    }
  }
  return added;
}

size_t DataGraph::AddValueBasedEdges(const std::string& pk_path,
                                     const std::string& fk_path,
                                     const std::string& label) {
  // Index PK nodes by content value.
  std::unordered_map<std::string, std::vector<store::NodeId>> pk_values;
  store_->ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    if (node->ContextPath() == pk_path) {
      pk_values[node->ContentString()].push_back(id);
    }
  });
  size_t added = 0;
  store_->ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    if (node->ContextPath() != fk_path) return;
    auto it = pk_values.find(node->ContentString());
    if (it == pk_values.end()) return;
    for (const store::NodeId& pk : it->second) {
      if (pk == id) continue;
      AddEdge(pk, id, EdgeType::kValueBased, label);
      ++added;
    }
  });
  return added;
}

std::vector<Edge> DataGraph::NonTreeEdges(const store::NodeId& node) const {
  std::vector<Edge> out;
  if (auto it = out_edges_.find(node); it != out_edges_.end()) {
    for (uint32_t e : it->second) out.push_back(edges_[e]);
  }
  if (auto it = in_edges_.find(node); it != in_edges_.end()) {
    for (uint32_t e : it->second) out.push_back(edges_[e]);
  }
  return out;
}

size_t DataGraph::Degree(const store::NodeId& node) const {
  size_t degree = 0;
  if (auto it = out_edges_.find(node); it != out_edges_.end()) {
    degree += it->second.size();
  }
  if (auto it = in_edges_.find(node); it != in_edges_.end()) {
    degree += it->second.size();
  }
  return degree;
}

std::vector<store::NodeId> DataGraph::Neighbors(const store::NodeId& node) const {
  std::vector<store::NodeId> out;
  ForEachNeighbor(node, [&out](const store::NodeId& next) {
    out.push_back(next);
    return true;
  });
  return out;
}

std::optional<size_t> DataGraph::LegacyBfs(const store::NodeId& a,
                                           const store::NodeId& b,
                                           size_t max_depth, size_t max_visits,
                                           std::vector<store::NodeId>* path_out,
                                           GraphStats* stats) const {
  if (a == b) {
    if (path_out != nullptr) *path_out = {a};
    return 0;
  }
  std::unordered_map<store::NodeId, store::NodeId, store::NodeIdHasher> parent;
  std::deque<std::pair<store::NodeId, size_t>> queue;
  queue.emplace_back(a, 0);
  parent.emplace(a, a);
  size_t visited = 1;
  size_t found_depth = 0;
  bool found = false;
  while (!queue.empty() && !found) {
    auto [current, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_depth) continue;
    // Work budget: a dense value-edge mesh puts the whole collection within
    // a few hops, so an exhausted budget reads as "not connected" instead of
    // flooding the store on every call.
    if (max_visits > 0 && visited >= max_visits) break;
    if (stats != nullptr) ++stats->bfs_expansions;
    // Allocation-free neighbor walk (identical visit order to Neighbors()).
    ForEachNeighbor(current, [&](const store::NodeId& next) {
      if (parent.count(next)) return true;
      parent.emplace(next, current);
      ++visited;
      if (next == b) {
        found_depth = depth + 1;
        found = true;
        return false;
      }
      queue.emplace_back(next, depth + 1);
      return true;
    });
  }
  if (!found) return std::nullopt;
  if (path_out != nullptr) {
    std::vector<store::NodeId> path{b};
    store::NodeId walk = b;
    while (!(walk == a)) {
      walk = parent.at(walk);
      path.push_back(walk);
    }
    std::reverse(path.begin(), path.end());
    *path_out = std::move(path);
  }
  return found_depth;
}

std::optional<size_t> DataGraph::ShortestPathLength(const store::NodeId& a,
                                                    const store::NodeId& b,
                                                    size_t max_depth,
                                                    size_t max_visits,
                                                    GraphStats* stats) const {
  if (csr_ != nullptr && kernel_mode_ != GraphKernelMode::kLegacy) {
    Csr::Distance result = csr_->ShortestPathLength(a, b, max_depth,
                                                    max_visits, kernel_mode_,
                                                    stats);
    if (result.resolved) return result.length;
  }
  return LegacyBfs(a, b, max_depth, max_visits, nullptr, stats);
}

std::vector<store::NodeId> DataGraph::ShortestPath(const store::NodeId& a,
                                                   const store::NodeId& b,
                                                   size_t max_depth,
                                                   size_t max_visits,
                                                   GraphStats* stats) const {
  if (csr_ != nullptr && kernel_mode_ != GraphKernelMode::kLegacy) {
    Csr::Path result =
        csr_->ShortestPath(a, b, max_depth, max_visits, kernel_mode_, stats);
    if (result.resolved) return std::move(result.nodes);
  }
  std::vector<store::NodeId> path;
  LegacyBfs(a, b, max_depth, max_visits, &path, stats);
  return path;
}

std::optional<size_t> DataGraph::ConnectionSize(
    const std::vector<store::NodeId>& nodes, size_t max_depth,
    size_t max_visits, GraphStats* stats) const {
  if (nodes.size() <= 1) return 0;
  // Group nodes by document.
  std::unordered_map<store::DocId, std::vector<xml::DeweyId>> by_doc;
  for (const auto& n : nodes) by_doc[n.doc].push_back(n.dewey);

  size_t total = 0;
  // Within one document the minimal connecting subtree of a node set S in a
  // tree has exactly (1/2) * sum of consecutive tree distances over S sorted
  // in DFS (Dewey) order, closing the cycle — the classic Euler-tour identity.
  for (auto& [doc, deweys] : by_doc) {
    if (deweys.size() == 1) continue;
    std::sort(deweys.begin(), deweys.end());
    size_t cycle = 0;
    for (size_t i = 0; i < deweys.size(); ++i) {
      const xml::DeweyId& cur = deweys[i];
      const xml::DeweyId& next = deweys[(i + 1) % deweys.size()];
      cycle += xml::TreeDistance(cur, next);
    }
    total += cycle / 2;
  }
  if (by_doc.size() == 1) return total;

  // Across documents: connect document groups pairwise through the graph,
  // using the cheapest inter-group shortest path (greedy spanning connection).
  std::vector<store::NodeId> representatives;
  for (const auto& n : nodes) representatives.push_back(n);
  std::vector<bool> connected(representatives.size(), false);
  connected[0] = true;
  size_t connected_count = 1;
  while (connected_count < representatives.size()) {
    size_t best_cost = SIZE_MAX;
    size_t best_index = SIZE_MAX;
    for (size_t i = 0; i < representatives.size(); ++i) {
      if (connected[i]) continue;
      for (size_t j = 0; j < representatives.size(); ++j) {
        if (!connected[j]) continue;
        if (representatives[i].doc == representatives[j].doc) {
          // Same-document cost already accounted by the subtree term.
          best_cost = std::min(best_cost, static_cast<size_t>(0));
          best_index = std::min(best_index, i);
          continue;
        }
        auto len = ShortestPathLength(representatives[j], representatives[i],
                                      max_depth, max_visits, stats);
        if (len && *len < best_cost) {
          best_cost = *len;
          best_index = i;
        }
      }
    }
    if (best_index == SIZE_MAX) return std::nullopt;  // tuple not connectable
    connected[best_index] = true;
    ++connected_count;
    total += best_cost;
  }
  return total;
}

}  // namespace seda::graph
