#include "graph/csr.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "persist/reader.h"
#include "persist/writer.h"

namespace seda::graph {

namespace {

/// Degree-skew ratio above which intersection gallops (binary-searches the
/// long row per short-row element) instead of merging linearly.
constexpr size_t kGallopSkewRatio = 16;
/// Minimum smaller-row degree for the stamp-bitmap intersection: below this a
/// linear merge wins on cache behaviour; above it (hub against hub) marking
/// one row in the per-thread stamp array and probing the other avoids the
/// merge's branch misses.
constexpr size_t kBitmapMinDegree = 256;

/// Per-thread BFS/intersection scratch: generation-stamped arrays sized to
/// the graph, so repeated kernel calls allocate nothing. `owner`
/// distinguishes graphs (epochs) sharing a thread.
struct Scratch {
  const void* owner = nullptr;
  uint32_t generation = 0;
  std::vector<uint32_t> visited_gen;  ///< visited iff == generation
  std::vector<uint32_t> parent;
  std::vector<std::pair<uint32_t, uint32_t>> frontier;  ///< (vertex, depth)
};

Scratch& AcquireScratch(const void* owner, uint32_t num_vertices) {
  thread_local Scratch scratch;
  Scratch& s = scratch;
  if (s.owner != owner || s.visited_gen.size() != num_vertices) {
    s.owner = owner;
    s.visited_gen.assign(num_vertices, 0);
    s.parent.assign(num_vertices, 0);
    s.generation = 0;
  }
  if (++s.generation == 0) {  // generation wrapped: stamps are ambiguous
    std::fill(s.visited_gen.begin(), s.visited_gen.end(), 0);
    s.generation = 1;
  }
  s.frontier.clear();
  return s;
}

/// Binary search for `x` in the sorted run [begin, end), counting probes.
bool SortedContains(const uint32_t* begin, const uint32_t* end, uint32_t x,
                    GraphStats* stats) {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(end - begin);
  uint64_t probes = 0;
  bool found = false;
  while (lo < hi) {
    ++probes;
    size_t mid = lo + (hi - lo) / 2;
    if (begin[mid] == x) {
      found = true;
      break;
    }
    if (begin[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (stats != nullptr) stats->intersection_probes += probes;
  return found;
}

}  // namespace

std::unique_ptr<Csr> Csr::Build(const store::DocumentStore& store,
                                const std::vector<Edge>& edges,
                                const CsrOptions& options) {
  std::unique_ptr<Csr> csr(new Csr());
  csr->options_ = options;
  csr->edge_count_ = static_cast<uint32_t>(edges.size());
  csr->Number(store);
  if (!csr->BuildAdjacency(store, edges)) return nullptr;
  csr->BuildSorted();
  csr->BuildSketches();
  return csr;
}

void Csr::Number(const store::DocumentStore& store) {
  node_of_.clear();
  doc_of_.clear();
  node_of_.reserve(static_cast<size_t>(store.TotalNodeCount()));
  doc_base_.assign(store.DocumentCount() + 1, 0);
  for (store::DocId d = 0; d < store.DocumentCount(); ++d) {
    doc_base_[d] = static_cast<uint32_t>(node_of_.size());
    store.document(d).ForEachNode([&](xml::Node* node) {
      if (node->kind() == xml::NodeKind::kText) return;
      node_of_.push_back(node);
      doc_of_.push_back(d);
    });
  }
  doc_base_[store.DocumentCount()] = static_cast<uint32_t>(node_of_.size());
  num_vertices_ = static_cast<uint32_t>(node_of_.size());
  words_per_sketch_ = (num_vertices_ + 31u) / 32u;
}

std::optional<uint32_t> Csr::VertexOf(const store::NodeId& id) const {
  if (id.doc + 1 >= doc_base_.size()) return std::nullopt;
  // Vertices of one document are in preorder, which for Dewey IDs is
  // lexicographic order — so the node is findable by binary search without
  // any NodeId hash map.
  const uint32_t lo = doc_base_[id.doc];
  const uint32_t hi = doc_base_[id.doc + 1];
  auto begin = node_of_.begin() + lo;
  auto end = node_of_.begin() + hi;
  auto it = std::lower_bound(
      begin, end, id.dewey,
      [](const xml::Node* n, const xml::DeweyId& d) { return n->dewey() < d; });
  if (it == end || !((*it)->dewey() == id.dewey)) return std::nullopt;
  return lo + static_cast<uint32_t>(it - begin);
}

bool Csr::BuildAdjacency(const store::DocumentStore& store,
                         const std::vector<Edge>& edges) {
  const uint32_t v_count = num_vertices_;
  // Node pointer -> vertex, for O(1) parent/child resolution during the fill.
  std::unordered_map<const xml::Node*, uint32_t> vertex_of_node;
  vertex_of_node.reserve(v_count);
  for (uint32_t v = 0; v < v_count; ++v) vertex_of_node.emplace(node_of_[v], v);

  std::vector<uint32_t> efrom(edges.size());
  std::vector<uint32_t> eto(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    xml::Node* from = store.GetNode(edges[e].from);
    xml::Node* to = store.GetNode(edges[e].to);
    if (from == nullptr || to == nullptr) return false;
    auto fit = vertex_of_node.find(from);
    auto tit = vertex_of_node.find(to);
    if (fit == vertex_of_node.end() || tit == vertex_of_node.end()) {
      return false;  // endpoint is a text node: kernels cannot cover it
    }
    efrom[e] = fit->second;
    eto[e] = tit->second;
  }

  // Per-vertex degrees: tree (parent + non-text children) + out + in.
  std::vector<uint32_t> tree_deg(v_count, 0);
  for (uint32_t v = 0; v < v_count; ++v) {
    const xml::Node* n = node_of_[v];
    uint32_t deg = n->parent() != nullptr ? 1 : 0;
    for (const auto& child : n->children()) {
      if (child->kind() != xml::NodeKind::kText) ++deg;
    }
    tree_deg[v] = deg;
  }
  std::vector<uint32_t> out_deg(v_count, 0);
  std::vector<uint32_t> in_deg(v_count, 0);
  for (size_t e = 0; e < edges.size(); ++e) {
    ++out_deg[efrom[e]];
    ++in_deg[eto[e]];
  }

  std::vector<uint32_t> offsets(v_count + 1, 0);
  for (uint32_t v = 0; v < v_count; ++v) {
    offsets[v + 1] = offsets[v] + tree_deg[v] + out_deg[v] + in_deg[v];
  }
  std::vector<uint32_t> adjacency(offsets[v_count]);

  // Row layout [tree][out][in], each region in the legacy walk's order: the
  // tree part fills here; the out/in parts fill by one pass over the edge
  // log, which reproduces the per-vertex log order the hash-map adjacency
  // lists hold (duplicates and self-loop double entries included).
  std::vector<uint32_t> out_cursor(v_count);
  std::vector<uint32_t> in_cursor(v_count);
  for (uint32_t v = 0; v < v_count; ++v) {
    uint32_t cursor = offsets[v];
    const xml::Node* n = node_of_[v];
    if (n->parent() != nullptr) {
      adjacency[cursor++] = vertex_of_node.at(n->parent());
    }
    for (const auto& child : n->children()) {
      if (child->kind() == xml::NodeKind::kText) continue;
      adjacency[cursor++] = vertex_of_node.at(child.get());
    }
    out_cursor[v] = cursor;
    in_cursor[v] = cursor + out_deg[v];
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    adjacency[out_cursor[efrom[e]]++] = eto[e];
    adjacency[in_cursor[eto[e]]++] = efrom[e];
  }

  offsets_.Own(std::move(offsets));
  adjacency_.Own(std::move(adjacency));
  std::vector<uint32_t> degrees(v_count);
  for (uint32_t v = 0; v < v_count; ++v) degrees[v] = out_deg[v] + in_deg[v];
  non_tree_degree_.Own(std::move(degrees));
  return true;
}

void Csr::BuildSorted() {
  const uint32_t v_count = num_vertices_;
  std::vector<uint32_t> sorted_offsets(v_count + 1, 0);
  std::vector<uint32_t> sorted_adjacency;
  sorted_adjacency.reserve(adjacency_.size());
  std::vector<uint32_t> row;
  for (uint32_t v = 0; v < v_count; ++v) {
    row.assign(RowBegin(v), RowEnd(v));
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    sorted_adjacency.insert(sorted_adjacency.end(), row.begin(), row.end());
    sorted_offsets[v + 1] = static_cast<uint32_t>(sorted_adjacency.size());
  }
  sorted_offsets_.Own(std::move(sorted_offsets));
  sorted_adjacency_.Own(std::move(sorted_adjacency));
}

void Csr::BuildSketches() {
  sketch_hubs_.clear();
  if (options_.sketch_max_count == 0 || options_.sketch_min_degree == 0 ||
      num_vertices_ == 0) {
    sketch_bits_.Own({});
    return;
  }
  // Candidates: non-tree degree at or above the threshold; keep the highest
  // degrees, ties to the lower vertex (deterministic across builds).
  std::vector<std::pair<uint32_t, uint32_t>> candidates;  // (degree, vertex)
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    if (non_tree_degree_[v] >= options_.sketch_min_degree) {
      candidates.emplace_back(non_tree_degree_[v], v);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (candidates.size() > options_.sketch_max_count) {
    candidates.resize(options_.sketch_max_count);
  }
  sketch_hubs_.reserve(candidates.size());
  for (const auto& [deg, v] : candidates) sketch_hubs_.push_back(v);

  // One full-width bitmap per hub: every vertex within distance 2. Exact by
  // construction — an unbudgeted depth-2 BFS over the arrays.
  std::vector<uint32_t> bits(sketch_hubs_.size() * words_per_sketch_, 0);
  std::vector<uint32_t> frontier;
  std::vector<uint32_t> next;
  for (size_t i = 0; i < sketch_hubs_.size(); ++i) {
    uint32_t* words = bits.data() + i * words_per_sketch_;
    auto mark = [&](uint32_t v) -> bool {  // true if newly marked
      uint32_t& word = words[v >> 5];
      uint32_t bit = 1u << (v & 31u);
      if ((word & bit) != 0) return false;
      word |= bit;
      return true;
    };
    frontier.assign(1, sketch_hubs_[i]);
    mark(sketch_hubs_[i]);
    for (int depth = 0; depth < 2; ++depth) {
      next.clear();
      for (uint32_t v : frontier) {
        for (const uint32_t* it = RowBegin(v); it != RowEnd(v); ++it) {
          if (mark(*it)) next.push_back(*it);
        }
      }
      frontier.swap(next);
    }
  }
  sketch_bits_.Own(std::move(bits));
}

int Csr::SketchIndexOf(uint32_t v) const {
  for (size_t i = 0; i < sketch_hubs_.size(); ++i) {
    if (sketch_hubs_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

bool Csr::Adjacent(uint32_t va, uint32_t vb, GraphStats* stats) const {
  // Search the smaller row for the other endpoint.
  uint32_t da = sorted_offsets_[va + 1] - sorted_offsets_[va];
  uint32_t db = sorted_offsets_[vb + 1] - sorted_offsets_[vb];
  if (db < da) {
    std::swap(va, vb);
  }
  return SortedContains(SortedRowBegin(va), SortedRowEnd(va), vb, stats);
}

bool Csr::RowsIntersect(uint32_t va, uint32_t vb, GraphStats* stats) const {
  const uint32_t* a = SortedRowBegin(va);
  const uint32_t* a_end = SortedRowEnd(va);
  const uint32_t* b = SortedRowBegin(vb);
  const uint32_t* b_end = SortedRowEnd(vb);
  size_t da = static_cast<size_t>(a_end - a);
  size_t db = static_cast<size_t>(b_end - b);
  if (da > db) {
    std::swap(a, b);
    std::swap(a_end, b_end);
    std::swap(da, db);
  }
  if (da == 0) return false;
  uint64_t probes = 0;
  bool found = false;
  if (db / da >= kGallopSkewRatio) {
    // Galloping: binary-search the long row per short-row element, advancing
    // the search base (both rows ascend).
    const uint32_t* lo = b;
    for (const uint32_t* it = a; it != a_end && !found; ++it) {
      size_t left = 0;
      size_t right = static_cast<size_t>(b_end - lo);
      while (left < right) {
        ++probes;
        size_t mid = left + (right - left) / 2;
        if (lo[mid] < *it) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      lo += left;
      if (lo != b_end && *lo == *it) found = true;
    }
  } else if (da >= kBitmapMinDegree) {
    // Hub against hub: stamp the smaller row into the per-thread scratch
    // (the reusable bitmap), probe with the larger — no merge branches.
    Scratch& s = AcquireScratch(this, num_vertices_);
    for (const uint32_t* it = a; it != a_end; ++it) {
      s.visited_gen[*it] = s.generation;
      ++probes;
    }
    for (const uint32_t* it = b; it != b_end && !found; ++it) {
      ++probes;
      if (s.visited_gen[*it] == s.generation) found = true;
    }
  } else {
    // Comparable small degrees: plain linear merge.
    while (a != a_end && b != b_end) {
      ++probes;
      if (*a == *b) {
        found = true;
        break;
      }
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
  }
  if (stats != nullptr) stats->intersection_probes += probes;
  return found;
}

std::optional<bool> Csr::WithinTwo(uint32_t va, uint32_t vb,
                                   GraphKernelMode mode,
                                   GraphStats* stats) const {
  if (mode == GraphKernelMode::kAuto) {
    // A sketch at either endpoint answers dist<=2 for the pair exactly, in
    // one bit test — this is what lets hub-mediated tuples score without
    // touching the hub's (huge) row at all.
    int si = SketchIndexOf(va);
    if (si >= 0) {
      if (stats != nullptr) ++stats->sketch_hits;
      return SketchCovers(si, vb);
    }
    si = SketchIndexOf(vb);
    if (si >= 0) {
      if (stats != nullptr) ++stats->sketch_hits;
      return SketchCovers(si, va);
    }
  }
  return RowsIntersect(va, vb, stats);
}

Csr::Distance Csr::ShortestPathLength(const store::NodeId& a,
                                      const store::NodeId& b, size_t max_depth,
                                      size_t max_visits, GraphKernelMode mode,
                                      GraphStats* stats) const {
  Distance result;
  auto va = VertexOf(a);
  auto vb = VertexOf(b);
  if (!va.has_value() || !vb.has_value()) return result;  // caller falls back
  result.resolved = true;
  if (*va == *vb) {
    result.length = 0;
    return result;
  }
  if (max_depth == 0) return result;
  const bool fast_paths = mode == GraphKernelMode::kCsrIntersect ||
                          mode == GraphKernelMode::kAuto;
  if (fast_paths) {
    // Distances 1 and 2 are answered exactly, independent of max_visits:
    // these answers can only differ from the legacy walker where its
    // exhausted budget under-reported connectivity.
    if (Adjacent(*va, *vb, stats)) {
      result.length = 1;
      return result;
    }
    if (max_depth == 1) return result;
    if (*WithinTwo(*va, *vb, mode, stats)) {
      result.length = 2;
      return result;
    }
    if (max_depth == 2) return result;
  }

  // Budgeted frontier BFS over the arrays, with the legacy walker's exact
  // accounting (depth test, then budget test, then expand; found when the
  // target is *added*), so results — including budget-truncated ones — are
  // byte-identical to the hash-map walk.
  Scratch& s = AcquireScratch(this, num_vertices_);
  s.frontier.emplace_back(*va, 0);
  s.visited_gen[*va] = s.generation;
  size_t visited = 1;
  size_t head = 0;
  while (head < s.frontier.size()) {
    auto [v, depth] = s.frontier[head++];
    if (depth >= max_depth) continue;
    if (max_visits > 0 && visited >= max_visits) break;
    if (stats != nullptr) ++stats->bfs_expansions;
    bool found = false;
    for (const uint32_t* it = RowBegin(v); it != RowEnd(v); ++it) {
      uint32_t u = *it;
      if (s.visited_gen[u] == s.generation) continue;
      s.visited_gen[u] = s.generation;
      ++visited;
      if (u == *vb) {
        result.length = depth + 1;
        found = true;
        break;
      }
      s.frontier.emplace_back(u, depth + 1);
    }
    if (found) break;
  }
  return result;
}

std::optional<uint32_t> Csr::DistanceTwoWitness(uint32_t va, uint32_t vb,
                                                GraphStats* stats) const {
  // The legacy BFS records as vb's parent the first distinct neighbor w of
  // va (in walk order) adjacent to vb: every depth-1 vertex is enqueued
  // before any is expanded, in first-occurrence row order.
  Scratch& s = AcquireScratch(this, num_vertices_);
  s.visited_gen[va] = s.generation;
  for (const uint32_t* it = RowBegin(va); it != RowEnd(va); ++it) {
    uint32_t w = *it;
    if (s.visited_gen[w] == s.generation) continue;
    s.visited_gen[w] = s.generation;
    if (SortedContains(SortedRowBegin(w), SortedRowEnd(w), vb, stats)) {
      return w;
    }
  }
  return std::nullopt;
}

Csr::Path Csr::ShortestPath(const store::NodeId& a, const store::NodeId& b,
                            size_t max_depth, size_t max_visits,
                            GraphKernelMode mode, GraphStats* stats) const {
  Path result;
  auto va = VertexOf(a);
  auto vb = VertexOf(b);
  if (!va.has_value() || !vb.has_value()) return result;
  result.resolved = true;
  if (*va == *vb) {
    result.nodes = {a};
    return result;
  }
  if (max_depth == 0) return result;
  const bool fast_paths = mode == GraphKernelMode::kCsrIntersect ||
                          mode == GraphKernelMode::kAuto;
  if (fast_paths) {
    if (Adjacent(*va, *vb, stats)) {
      result.nodes = {a, b};
      return result;
    }
    if (max_depth == 1) return result;
    if (*WithinTwo(*va, *vb, mode, stats)) {
      auto witness = DistanceTwoWitness(*va, *vb, stats);
      SEDA_DCHECK(witness.has_value())
          << "distance-2 positive without a common neighbor";
      if (witness.has_value()) {
        result.nodes = {a, NodeIdOf(*witness), b};
        return result;
      }
      return result;  // unreachable; keeps a release build safe
    }
    if (max_depth == 2) return result;
  }

  Scratch& s = AcquireScratch(this, num_vertices_);
  s.frontier.emplace_back(*va, 0);
  s.visited_gen[*va] = s.generation;
  s.parent[*va] = *va;
  size_t visited = 1;
  size_t head = 0;
  bool found = false;
  while (head < s.frontier.size() && !found) {
    auto [v, depth] = s.frontier[head++];
    if (depth >= max_depth) continue;
    if (max_visits > 0 && visited >= max_visits) break;
    if (stats != nullptr) ++stats->bfs_expansions;
    for (const uint32_t* it = RowBegin(v); it != RowEnd(v); ++it) {
      uint32_t u = *it;
      if (s.visited_gen[u] == s.generation) continue;
      s.visited_gen[u] = s.generation;
      s.parent[u] = v;
      ++visited;
      if (u == *vb) {
        found = true;
        break;
      }
      s.frontier.emplace_back(u, depth + 1);
    }
  }
  if (!found) return result;
  std::vector<uint32_t> chain{*vb};
  uint32_t walk = *vb;
  while (walk != *va) {
    walk = s.parent[walk];
    chain.push_back(walk);
  }
  result.nodes.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    result.nodes.push_back(NodeIdOf(*it));
  }
  return result;
}

Status Csr::SaveTo(persist::ImageWriter* writer) const {
  writer->BeginSection(persist::SectionId::kGraphCsr);
  // All fields are u32 (or u32-count-prefixed flat u32 arrays), keeping
  // every array 4-byte aligned within the 64-byte-aligned section — the
  // reader hands out zero-copy spans.
  writer->PutU32(num_vertices_);
  writer->PutU32(edge_count_);
  writer->PutU32(options_.sketch_min_degree);
  writer->PutU32(options_.sketch_max_count);
  writer->PutU32Span(offsets_.data(), offsets_.size());
  writer->PutU32Span(adjacency_.data(), adjacency_.size());
  writer->PutU32Span(sorted_offsets_.data(), sorted_offsets_.size());
  writer->PutU32Span(sorted_adjacency_.data(), sorted_adjacency_.size());
  writer->PutU32Span(non_tree_degree_.data(), non_tree_degree_.size());
  writer->PutU32Span(sketch_hubs_.data(), sketch_hubs_.size());
  writer->PutU32Span(sketch_bits_.data(), sketch_bits_.size());
  return writer->EndSection();
}

Result<std::unique_ptr<Csr>> Csr::LoadFrom(
    std::shared_ptr<const persist::MappedImage> image,
    const store::DocumentStore& store, const std::vector<Edge>& edges) {
  SEDA_ASSIGN_OR_RETURN(
      persist::SectionCursor cursor,
      persist::OpenSection(*image, persist::SectionId::kGraphCsr));
  std::unique_ptr<Csr> csr(new Csr());
  csr->Number(store);
  uint32_t num_vertices = cursor.GetU32();
  csr->edge_count_ = cursor.GetU32();
  csr->options_.sketch_min_degree = cursor.GetU32();
  csr->options_.sketch_max_count = cursor.GetU32();
  auto [offsets, offsets_n] = cursor.GetU32Span();
  csr->offsets_.Borrow(offsets, offsets_n);
  auto [adjacency, adjacency_n] = cursor.GetU32Span();
  csr->adjacency_.Borrow(adjacency, adjacency_n);
  auto [sorted_offsets, sorted_offsets_n] = cursor.GetU32Span();
  csr->sorted_offsets_.Borrow(sorted_offsets, sorted_offsets_n);
  auto [sorted_adjacency, sorted_adjacency_n] = cursor.GetU32Span();
  csr->sorted_adjacency_.Borrow(sorted_adjacency, sorted_adjacency_n);
  auto [non_tree, non_tree_n] = cursor.GetU32Span();
  csr->non_tree_degree_.Borrow(non_tree, non_tree_n);
  auto [hubs, hubs_n] = cursor.GetU32Span();
  csr->sketch_hubs_.assign(hubs, hubs + hubs_n);
  auto [bits, bits_n] = cursor.GetU32Span();
  csr->sketch_bits_.Borrow(bits, bits_n);
  SEDA_RETURN_IF_ERROR(cursor.status());
  if (num_vertices != csr->num_vertices_) {
    return Status::ParseError("image csr section disagrees with the store");
  }
  SEDA_RETURN_IF_ERROR(csr->Validate(edges));
  csr->image_ = std::move(image);
  return csr;
}

Status Csr::Validate(const std::vector<Edge>& edges) const {
  // Structural validation before any kernel may run: a hostile image must
  // fail with a clean error, never index out of bounds. The per-entry
  // content equivalence with the edge log is the auditor's job
  // (graph.csr_offsets / graph.csr_symmetry); here we prove memory safety
  // and the counts.
  auto malformed = [](const char* what) {
    return Status::ParseError(std::string("image csr section malformed: ") +
                              what);
  };
  if (edge_count_ != edges.size()) return malformed("edge count");
  const size_t v_count = num_vertices_;
  if (offsets_.size() != v_count + 1 || sorted_offsets_.size() != v_count + 1 ||
      non_tree_degree_.size() != v_count) {
    return malformed("array sizes");
  }
  if (offsets_[0] != 0 || sorted_offsets_[0] != 0 ||
      offsets_[v_count] != adjacency_.size() ||
      sorted_offsets_[v_count] != sorted_adjacency_.size()) {
    return malformed("offset bounds");
  }
  for (size_t v = 0; v < v_count; ++v) {
    if (offsets_[v] > offsets_[v + 1] ||
        sorted_offsets_[v] > sorted_offsets_[v + 1]) {
      return malformed("offsets not monotone");
    }
  }
  for (uint32_t u : adjacency_) {
    if (u >= v_count) return malformed("adjacency out of range");
  }
  for (size_t v = 0; v < v_count; ++v) {
    const uint32_t* begin = SortedRowBegin(v);
    const uint32_t* end = SortedRowEnd(v);
    for (const uint32_t* it = begin; it != end; ++it) {
      if (*it >= v_count) return malformed("sorted adjacency out of range");
      if (it != begin && *(it - 1) >= *it) {
        return malformed("sorted row not strictly ascending");
      }
    }
  }
  if (sketch_hubs_.size() > options_.sketch_max_count ||
      sketch_bits_.size() !=
          sketch_hubs_.size() * static_cast<size_t>(words_per_sketch_)) {
    return malformed("sketch sizes");
  }
  for (uint32_t hub : sketch_hubs_) {
    if (hub >= v_count) return malformed("sketch hub out of range");
  }
  return Status::OK();
}

}  // namespace seda::graph
