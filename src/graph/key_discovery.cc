#include "graph/key_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace seda::graph {

std::vector<KeyCandidate> KeyDiscovery::DiscoverKeys(uint64_t min_support) const {
  // path -> set of values (collection scope) and per-doc duplicate detection.
  struct PathState {
    std::unordered_set<std::string> values;
    std::unordered_map<store::DocId, std::unordered_set<std::string>> per_doc;
    uint64_t total = 0;
    bool collection_unique = true;
    bool per_doc_unique = true;
  };
  std::unordered_map<std::string, PathState> states;

  store_->ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    // Leaf-valued nodes only: a single text/attribute payload.
    bool leaf = true;
    for (const auto& child : node->children()) {
      if (child->kind() == xml::NodeKind::kElement) {
        leaf = false;
        break;
      }
    }
    if (!leaf) return;
    std::string value = node->ContentString();
    if (value.empty()) return;
    PathState& state = states[node->ContextPath()];
    state.total += 1;
    if (!state.values.insert(value).second) state.collection_unique = false;
    if (!state.per_doc[id.doc].insert(value).second) state.per_doc_unique = false;
  });

  std::vector<KeyCandidate> out;
  for (auto& [path, state] : states) {
    if (state.total < min_support) continue;
    if (!state.collection_unique && !state.per_doc_unique) continue;
    KeyCandidate candidate;
    candidate.path = path;
    candidate.unique_in_collection = state.collection_unique;
    candidate.unique_per_document = state.per_doc_unique;
    candidate.distinct_values = state.values.size();
    candidate.total_nodes = state.total;
    out.push_back(std::move(candidate));
  }
  std::sort(out.begin(), out.end(), [](const KeyCandidate& a, const KeyCandidate& b) {
    if (a.unique_in_collection != b.unique_in_collection) {
      return a.unique_in_collection;
    }
    if (a.total_nodes != b.total_nodes) return a.total_nodes > b.total_nodes;
    return a.path < b.path;
  });
  return out;
}

bool KeyDiscovery::IsUniqueInCollection(const std::string& path) const {
  std::unordered_set<std::string> seen;
  bool unique = true;
  store_->ForEachNode([&](const store::NodeId&, xml::Node* node) {
    if (!unique || node->kind() == xml::NodeKind::kText) return;
    if (node->ContextPath() != path) return;
    if (!seen.insert(node->ContentString()).second) unique = false;
  });
  return unique;
}

}  // namespace seda::graph
