#ifndef SEDA_GRAPH_KEY_DISCOVERY_H_
#define SEDA_GRAPH_KEY_DISCOVERY_H_

#include <string>
#include <vector>

#include "store/document_store.h"

namespace seda::graph {

/// A discovered key candidate: the values at `path` are unique across the
/// whole collection (absolute) or within each document (per-document).
struct KeyCandidate {
  std::string path;
  bool unique_in_collection = false;
  bool unique_per_document = false;
  uint64_t distinct_values = 0;
  uint64_t total_nodes = 0;
};

/// Lightweight key discovery over the stored collection — a stand-in for the
/// GORDIAN composite-key discovery the paper cites ([17], future work for
/// automatic key detection). It scans leaf-valued paths and reports those
/// whose content values are unique, which both seeds value-based (PK/FK)
/// edges in the DataGraph and suggests dimension keys for the cube builder.
class KeyDiscovery {
 public:
  explicit KeyDiscovery(const store::DocumentStore* store) : store_(store) {}

  /// Examines every distinct path with at least `min_support` node
  /// occurrences and returns key candidates sorted by (collection-unique
  /// first, then support).
  std::vector<KeyCandidate> DiscoverKeys(uint64_t min_support = 2) const;

  /// Checks whether `path`'s values are unique across the collection.
  bool IsUniqueInCollection(const std::string& path) const;

 private:
  const store::DocumentStore* store_;
};

}  // namespace seda::graph

#endif  // SEDA_GRAPH_KEY_DISCOVERY_H_
