#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace seda::data {

namespace {

using xml::Document;
using xml::Node;

/// Adds <tag>value</tag> under parent.
Node* Leaf(Node* parent, const std::string& tag, const std::string& value) {
  Node* el = parent->AddElement(tag);
  el->AddText(value);
  return el;
}

std::string Num(seda::Rng* rng, int lo, int hi, const std::string& suffix = "") {
  return std::to_string(rng->Range(lo, hi)) + suffix;
}

std::string Pct(seda::Rng* rng) {
  return std::to_string(rng->Range(1, 39)) + "." + std::to_string(rng->Range(0, 9)) +
         "%";
}

}  // namespace

const std::vector<std::string>& CountryNamePool() {
  static const std::vector<std::string>* kPool = [] {
    auto* pool = new std::vector<std::string>{
        "United States", "China",     "Canada",   "Mexico",    "Germany",
        "France",        "Brazil",    "India",    "Japan",     "Australia",
        "Russia",        "Italy",     "Spain",    "Nigeria",   "Egypt",
        "Kenya",         "Peru",      "Chile",    "Argentina", "Norway",
        "Sweden",        "Finland",   "Poland",   "Romania",   "Greece",
        "Turkey",        "Iran",      "Iraq",     "Israel",    "Jordan",
        "Thailand",      "Vietnam",   "Laos",     "Cambodia",  "Malaysia",
        "Indonesia",     "Philippines", "Korea",  "Mongolia",  "Nepal",
        "Ghana",         "Senegal",   "Morocco",  "Tunisia",   "Libya",
        "Sudan",         "Ethiopia",  "Somalia",  "Angola",    "Zambia",
        "Bolivia",       "Ecuador",   "Colombia", "Venezuela", "Uruguay",
        "Paraguay",      "Cuba",      "Haiti",    "Panama",    "Honduras",
    };
    // Extend deterministically to ~270 names.
    for (int i = 0; i < 210; ++i) {
      pool->push_back("Country" + std::to_string(i));
    }
    return pool;
  }();
  return *kPool;
}

std::vector<std::string> WorldFactbookGenerator::UnitedStatesContexts() {
  return {
      "/country/name",
      "/country/government/long_form",
      "/country/government/capital_named_after",
      "/country/government/diplomatic/embassy_of",
      "/country/government/treaties/signatory",
      "/country/economy/import_partners/item/trade_country",
      "/country/economy/export_partners/item/trade_country",
      "/country/economy/aid_donors/donor",
      "/country/economy/aid_recipients/donor_country",
      "/country/economy/currency_peg/anchor",
      "/country/economy/major_creditors/creditor",
      "/country/transnational_issues/refugees/country_of_origin",
      "/country/transnational_issues/disputes/party",
      "/country/transnational_issues/illicit_drugs/transit_to",
      "/country/geography/bordering/neighbor",
      "/country/geography/maritime_claims/adjacent_to",
      "/country/people/migration/destination",
      "/country/people/diaspora/host_country",
      "/country/military/alliances/ally",
      "/country/military/bases/host_nation",
      "/country/communications/satellite/operator_country",
      "/country/transport/airlines/partner_country",
      "/country/transport/ports/operated_by",
      "/territory/name",
      "/territory/administered_by",
      "/territory/claimed_by",
      "/territory/history/discovered_by",
  };
}

void WorldFactbookGenerator::Populate(store::DocumentStore* store) const {
  seda::Rng rng(options_.seed);
  const auto& names = CountryNamePool();
  size_t countries =
      std::max<size_t>(2, static_cast<size_t>(options_.countries_per_year *
                                              options_.scale));
  size_t territories = std::max<size_t>(
      1, static_cast<size_t>(options_.territories_per_year * options_.scale));
  size_t refugee_budget = static_cast<size_t>(options_.refugee_docs * options_.scale);
  size_t refugees_emitted = 0;

  // Long-tail optional metric pools per section: metric i is present with a
  // Zipf-ish probability, and metrics past the first few only exist in later
  // years (schema evolution), reproducing the paper's "long tail of
  // infrequent paths".
  const std::vector<std::string> sections = {
      "geography", "people",        "economy", "government",
      "military",  "communications", "transport", "environment",
      "energy",    "health",        "education"};
  const size_t metrics_per_section = 185;

  // Rare contexts that can carry a country name (part of the 27 "United
  // States" contexts). Each maps to (section, subsection, leaf).
  struct NameSlot {
    const char* section;
    const char* group;
    const char* leaf;
    double probability;
  };
  const std::vector<NameSlot> name_slots = {
      {"government", "diplomatic", "embassy_of", 0.05},
      {"government", "treaties", "signatory", 0.04},
      {"economy", "aid_donors", "donor", 0.05},
      {"economy", "aid_recipients", "donor_country", 0.03},
      {"economy", "currency_peg", "anchor", 0.02},
      {"economy", "major_creditors", "creditor", 0.02},
      {"transnational_issues", "disputes", "party", 0.06},
      {"transnational_issues", "illicit_drugs", "transit_to", 0.03},
      {"geography", "maritime_claims", "adjacent_to", 0.05},
      {"people", "migration", "destination", 0.06},
      {"people", "diaspora", "host_country", 0.03},
      {"military", "alliances", "ally", 0.05},
      {"military", "bases", "host_nation", 0.02},
      {"communications", "satellite", "operator_country", 0.015},
      {"transport", "airlines", "partner_country", 0.02},
      {"transport", "ports", "operated_by", 0.015},
  };

  size_t doc_counter = 0;
  for (int year = options_.first_year; year <= options_.last_year; ++year) {
    for (size_t c = 0; c < countries; ++c) {
      const std::string& name = names[c % names.size()];
      bool is_us = name == "United States";
      auto doc = std::make_unique<Document>(
          "factbook-" + std::to_string(year) + "-" + std::to_string(c));
      Node* root = doc->CreateRoot("country");
      Leaf(root, "name", name);
      Leaf(root, "year", std::to_string(year));

      // Government.
      Node* government = root->AddElement("government");
      Leaf(government, "type", rng.Chance(0.5) ? "republic" : "monarchy");
      if (is_us) {
        Leaf(government, "long_form", "United States of America");
      } else if (rng.Chance(0.6)) {
        Leaf(government, "long_form", "Republic of " + name);
      }
      if (is_us && year == options_.first_year) {
        // Rare one-off context (e.g. Washington named after a person, but a
        // few capitals reference their parent country by name).
        Leaf(government, "capital_named_after", "United States");
      } else if (rng.Chance(0.01)) {
        Leaf(government, "capital_named_after",
             names[rng.Uniform(names.size())]);
      }

      // Geography with bordering neighbours (Figure 1 edges are added at the
      // graph layer from these names via value-based edges).
      Node* geography = root->AddElement("geography");
      Leaf(geography, "location",
           rng.Chance(0.3) ? "America" : (rng.Chance(0.5) ? "Asia" : "Europe"));
      Leaf(geography, "area", Num(&rng, 1000, 9000000, " sq km"));
      if (rng.Chance(0.6)) {
        Node* bordering = geography->AddElement("bordering");
        size_t neighbours = 1 + rng.Uniform(3);
        for (size_t b = 0; b < neighbours; ++b) {
          Leaf(bordering, "neighbor", names[rng.Uniform(names.size())]);
        }
        if (is_us) Leaf(bordering, "neighbor", "Canada");
        if (name == "Canada" || name == "Mexico") {
          Leaf(bordering, "neighbor", "United States");
        }
      }

      // People.
      Node* people = root->AddElement("people");
      Leaf(people, "population", Num(&rng, 100000, 1400000000));
      if (rng.Chance(0.7)) Leaf(people, "life_expectancy", Num(&rng, 48, 84));
      if (rng.Chance(0.5)) Leaf(people, "literacy", Pct(&rng));

      // Economy with the paper's schema evolution: GDP before 2005,
      // GDP_ppp from 2005 on (§7's heterogeneous fact example).
      Node* economy = root->AddElement("economy");
      std::string gdp_value = std::to_string(rng.Range(1, 18)) + "." +
                              std::to_string(rng.Range(0, 999)) + "T";
      if (year < 2005) {
        Leaf(economy, "GDP", gdp_value);
      } else {
        Leaf(economy, "GDP_ppp", gdp_value);
      }
      Node* imports = economy->AddElement("import_partners");
      size_t import_count = 2 + rng.Uniform(3);
      for (size_t i = 0; i < import_count; ++i) {
        Node* item = imports->AddElement("item");
        std::string partner = names[rng.Uniform(60)];
        // Many countries import from the US, making "United States" a
        // high-frequency trade_country value as in the real Factbook.
        if (i == 0 && !is_us && rng.Chance(0.5)) partner = "United States";
        Leaf(item, "trade_country", partner);
        Leaf(item, "percentage", Pct(&rng));
      }
      Node* exports = economy->AddElement("export_partners");
      size_t export_count = 1 + rng.Uniform(3);
      for (size_t i = 0; i < export_count; ++i) {
        Node* item = exports->AddElement("item");
        std::string partner = names[rng.Uniform(60)];
        if (i == 0 && !is_us && rng.Chance(0.4)) partner = "United States";
        Leaf(item, "trade_country", partner);
        Leaf(item, "percentage", Pct(&rng));
      }

      // Refugees path in a fixed number of documents (paper: 186/1600),
      // spread evenly across the collection.
      if (refugees_emitted < refugee_budget && (doc_counter % 8) == 3) {
        Node* transnational = root->AddElement("transnational_issues");
        Node* refugees = transnational->AddElement("refugees");
        Leaf(refugees, "country_of_origin",
             is_us || rng.Chance(0.1) ? "United States"
                                      : names[rng.Uniform(names.size())]);
        ++refugees_emitted;
      }

      // Named rare contexts.
      for (const NameSlot& slot : name_slots) {
        bool force_us = is_us && year == options_.last_year;
        if (!force_us && !rng.Chance(slot.probability)) continue;
        Node* section = root->FindChild(slot.section);
        if (section == nullptr) section = root->AddElement(slot.section);
        Node* group = section->FindChild(slot.group);
        if (group == nullptr) group = section->AddElement(slot.group);
        std::string value = force_us || rng.Chance(0.15)
                                ? "United States"
                                : names[rng.Uniform(names.size())];
        Leaf(group, slot.leaf, value);
      }

      // Long-tail metrics.
      for (const std::string& section_name : sections) {
        for (size_t metric = 0; metric < metrics_per_section; ++metric) {
          double p = 1.2 / static_cast<double>(metric + 3);
          // Later metrics only exist in later releases (schema evolution).
          int min_year = options_.first_year + static_cast<int>(metric % 6);
          if (year < min_year) continue;
          if (!rng.Chance(p * 0.35)) continue;
          Node* section = root->FindChild(section_name);
          if (section == nullptr) section = root->AddElement(section_name);
          Leaf(section, "metric_" + std::to_string(metric), Num(&rng, 1, 100000));
        }
      }

      store->AddDocument(std::move(doc));
      ++doc_counter;
    }

    // Territory documents (different root tag, so /country misses them —
    // the paper's 1577-of-1600 statistic).
    for (size_t t = 0; t < territories; ++t) {
      auto doc = std::make_unique<Document>(
          "factbook-territory-" + std::to_string(year) + "-" + std::to_string(t));
      Node* root = doc->CreateRoot("territory");
      std::string territory_name =
          t == 0 ? "United States Virgin Islands"
                 : "Territory" + std::to_string(t) + " Islands";
      Leaf(root, "name", territory_name);
      Leaf(root, "year", std::to_string(year));
      Leaf(root, "administered_by",
           t == 0 ? "United States" : names[rng.Uniform(60)]);
      if (t == 1) {
        Leaf(root, "claimed_by", "United States");
      } else if (rng.Chance(0.3)) {
        Leaf(root, "claimed_by", names[rng.Uniform(60)]);
      }
      Node* history = root->AddElement("history");
      Leaf(history, "discovered_by",
           t == 2 || (t == 0 && year == options_.last_year)
               ? "United States"
               : names[rng.Uniform(60)]);
      Leaf(root, "population", Num(&rng, 500, 300000));
      store->AddDocument(std::move(doc));
      ++doc_counter;
    }
  }
}

void MondialGenerator::Populate(store::DocumentStore* store) const {
  seda::Rng rng(options_.seed);
  const auto& names = CountryNamePool();
  auto scaled = [&](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(n * options_.scale));
  };
  size_t countries = scaled(options_.countries);
  size_t provinces = scaled(options_.provinces);
  size_t cities = scaled(options_.cities);
  size_t seas = scaled(options_.seas);
  size_t rivers = scaled(options_.rivers);
  size_t organizations = scaled(options_.organizations);

  // Subtype counts per entity kind; each subtype has its own optional field
  // mix, so dataguides converge to roughly one per subtype (Table 1: 86).
  auto subtype_fields = [&rng](Node* node, size_t subtype, size_t field_pool,
                               const char* prefix) {
    // Each subtype enables a disjoint window of 6 fields from the pool.
    size_t base = (subtype * 8) % field_pool;
    for (size_t f = 0; f < 8; ++f) {
      Leaf(node, std::string(prefix) + std::to_string(base + f),
           std::to_string(rng.Range(1, 100000)));
    }
  };

  for (size_t i = 0; i < countries; ++i) {
    auto doc = std::make_unique<Document>("mondial-country-" + std::to_string(i));
    Node* root = doc->CreateRoot("mondial_country");
    root->AddAttribute("id", "cty-" + std::to_string(i));
    Leaf(root, "name", names[i % names.size()]);
    Leaf(root, "population", Num(&rng, 100000, 1400000000));
    Leaf(root, "area", Num(&rng, 1000, 17000000));
    subtype_fields(root, i % 10, 80, "cstat_");
    store->AddDocument(std::move(doc));
  }
  for (size_t i = 0; i < provinces; ++i) {
    auto doc = std::make_unique<Document>("mondial-province-" + std::to_string(i));
    Node* root = doc->CreateRoot("province");
    root->AddAttribute("id", "prov-" + std::to_string(i));
    Leaf(root, "name", "Province" + std::to_string(i));
    Leaf(root, "in_country", names[i % names.size()]);
    Node* country_ref = root->AddElement("part_of");
    country_ref->AddAttribute("idref", "cty-" + std::to_string(i % countries));
    subtype_fields(root, i % 15, 120, "pstat_");
    store->AddDocument(std::move(doc));
  }
  for (size_t i = 0; i < cities; ++i) {
    auto doc = std::make_unique<Document>("mondial-city-" + std::to_string(i));
    Node* root = doc->CreateRoot("city");
    root->AddAttribute("id", "city-" + std::to_string(i));
    Leaf(root, "name", "City" + std::to_string(i));
    Leaf(root, "in_country", names[i % names.size()]);
    Leaf(root, "population", Num(&rng, 1000, 30000000));
    Node* located = root->AddElement("located_in");
    located->AddAttribute("idref", "prov-" + std::to_string(i % provinces));
    subtype_fields(root, i % 20, 160, "ystat_");
    store->AddDocument(std::move(doc));
  }
  for (size_t i = 0; i < seas; ++i) {
    auto doc = std::make_unique<Document>("mondial-sea-" + std::to_string(i));
    Node* root = doc->CreateRoot("sea");
    root->AddAttribute("id", "sea-" + std::to_string(i));
    Leaf(root, "name", i == 0 ? "Pacific Ocean" : "Sea" + std::to_string(i));
    Leaf(root, "depth", Num(&rng, 100, 11000));
    size_t borders = 1 + rng.Uniform(4);
    for (size_t b = 0; b < borders; ++b) {
      size_t cty = rng.Uniform(countries);
      Node* bordering = root->AddElement("bordering");
      bordering->AddAttribute("idref", "cty-" + std::to_string(cty));
      Leaf(root, "bordering_country", names[cty % names.size()]);
    }
    subtype_fields(root, i % 5, 40, "sstat_");
    store->AddDocument(std::move(doc));
  }
  for (size_t i = 0; i < rivers; ++i) {
    auto doc = std::make_unique<Document>("mondial-river-" + std::to_string(i));
    Node* root = doc->CreateRoot("river");
    root->AddAttribute("id", "river-" + std::to_string(i));
    Leaf(root, "name", "River" + std::to_string(i));
    Leaf(root, "length", Num(&rng, 50, 7000));
    Leaf(root, "in_country", names[i % names.size()]);
    subtype_fields(root, i % 8, 64, "rstat_");
    store->AddDocument(std::move(doc));
  }
  for (size_t i = 0; i < organizations; ++i) {
    auto doc = std::make_unique<Document>("mondial-org-" + std::to_string(i));
    Node* root = doc->CreateRoot("organization");
    root->AddAttribute("id", "org-" + std::to_string(i));
    Leaf(root, "name", "Organization" + std::to_string(i));
    Node* members = root->AddElement("members");
    size_t count = 2 + rng.Uniform(6);
    for (size_t m = 0; m < count; ++m) {
      size_t cty = rng.Uniform(countries);
      Leaf(members, "member_country", names[cty % names.size()]);
      Node* member = members->AddElement("member");
      member->AddAttribute("idref", "cty-" + std::to_string(cty));
    }
    subtype_fields(root, i % 28, 224, "ostat_");
    store->AddDocument(std::move(doc));
  }
}

void GoogleBaseGenerator::Populate(store::DocumentStore* store) const {
  seda::Rng rng(options_.seed);
  size_t docs = std::max<size_t>(
      1, static_cast<size_t>(options_.documents * options_.scale));
  size_t types = std::max<size_t>(1, options_.item_types);
  const std::vector<std::string> shared = {"title", "link", "price"};
  for (size_t i = 0; i < docs; ++i) {
    size_t type = i % types;
    auto doc = std::make_unique<Document>("gbase-" + std::to_string(i));
    Node* root = doc->CreateRoot("item");
    for (const std::string& field : shared) {
      Leaf(root, field, field + "-" + std::to_string(i));
    }
    Leaf(root, "item_type", "type" + std::to_string(type));
    // Nine type-specific flat attributes; identical within a type, disjoint
    // across types, so each type forms exactly one dataguide.
    for (size_t f = 0; f < 9; ++f) {
      Leaf(root, "attr_" + std::to_string(type * 9 + f), Num(&rng, 1, 10000));
    }
    if (type == 0 && i < types) {
      Leaf(root, "ships_to", "United States");
    }
    store->AddDocument(std::move(doc));
  }
}

void RecipeMLGenerator::Populate(store::DocumentStore* store) const {
  seda::Rng rng(options_.seed);
  size_t docs = std::max<size_t>(
      1, static_cast<size_t>(options_.documents * options_.scale));
  const std::vector<std::string> ingredients = {
      "flour", "sugar", "butter", "eggs",  "milk",   "salt",
      "yeast", "honey", "rice",   "beans", "tomato", "basil"};
  for (size_t i = 0; i < docs; ++i) {
    size_t variant = i % 3;
    auto doc = std::make_unique<Document>("recipe-" + std::to_string(i));
    Node* root = doc->CreateRoot("recipeml");
    Node* recipe = root->AddElement("recipe");
    Node* head = recipe->AddElement("head");
    Leaf(head, "title", "Recipe " + std::to_string(i));
    Leaf(head, "categories", variant == 0 ? "dessert" : "main");
    Node* ing_list = recipe->AddElement("ingredients");
    size_t count = 3 + rng.Uniform(4);
    for (size_t k = 0; k < count; ++k) {
      Node* ing = ing_list->AddElement("ing");
      Leaf(ing, "amt", Num(&rng, 1, 500, " g"));
      Leaf(ing, "item", ingredients[rng.Uniform(ingredients.size())]);
    }
    Node* directions = recipe->AddElement("directions");
    Leaf(directions, "step", "Mix everything and cook.");
    if (variant == 1) {
      Node* nutrition = recipe->AddElement("nutrition");
      for (int f = 0; f < 20; ++f) {
        Leaf(nutrition, "nutrient_" + std::to_string(f), Num(&rng, 1, 900));
      }
    }
    if (variant == 2) {
      Node* meta = recipe->AddElement("meta");
      Leaf(meta, "source", "community");
      Leaf(meta, "yield", Num(&rng, 1, 12));
      for (int f = 0; f < 18; ++f) {
        Leaf(meta, "provenance_" + std::to_string(f), Num(&rng, 1, 900));
      }
    }
    store->AddDocument(std::move(doc));
  }
}

void PopulateScenario(store::DocumentStore* store) {
  auto add = [&](const std::string& name, const std::string& xml_text) {
    auto result = store->AddXml(xml_text, name);
    (void)result;
  };

  // Figure 2 (a): United States 2002, GDP era.
  add("us-2002", R"(<country>
    <name>United States</name><year>2002</year>
    <economy><GDP>10.082T</GDP>
      <import_partners>
        <item><trade_country>Canada</trade_country><percentage>17.8%</percentage></item>
        <item><trade_country>China</trade_country><percentage>11.1%</percentage></item>
      </import_partners>
    </economy></country>)");

  // Extra years so the Figure 3 fact table has its 2004/2005 rows.
  add("us-2004", R"(<country>
    <name>United States</name><year>2004</year>
    <economy><GDP>11.75T</GDP>
      <import_partners>
        <item><trade_country>China</trade_country><percentage>12.5%</percentage></item>
        <item><trade_country>Mexico</trade_country><percentage>10.7%</percentage></item>
      </import_partners>
    </economy></country>)");
  add("us-2005", R"(<country>
    <name>United States</name><year>2005</year>
    <economy><GDP_ppp>12.36T</GDP_ppp>
      <import_partners>
        <item><trade_country>China</trade_country><percentage>13.8%</percentage></item>
        <item><trade_country>Mexico</trade_country><percentage>10.3%</percentage></item>
      </import_partners>
    </economy></country>)");

  // Figure 1: United States 2006 with import partners China 15% and
  // Canada 16.9%, export partner Canada 23.4%, geography America.
  add("us-2006", R"(<country>
    <name>United States</name><year>2006</year>
    <geography><location>America</location></geography>
    <economy><GDP_ppp>12.31T</GDP_ppp>
      <import_partners>
        <item><trade_country>China</trade_country><percentage>15%</percentage></item>
        <item><trade_country>Canada</trade_country><percentage>16.9%</percentage></item>
      </import_partners>
      <export_partners>
        <item><trade_country>Canada</trade_country><percentage>23.4%</percentage></item>
      </export_partners>
    </economy></country>)");

  // Figure 2 (b): Mexico 2003, "United States" as an import partner.
  add("mexico-2003", R"(<country>
    <name>Mexico</name><year>2003</year>
    <economy><GDP>924.4B</GDP>
      <import_partners>
        <item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
        <item><trade_country>Germany</trade_country><percentage>3.5%</percentage></item>
      </import_partners>
    </economy></country>)");

  // Figure 2 (c): Mexico 2005, "United States" as an export partner.
  add("mexico-2005", R"(<country>
    <name>Mexico</name><year>2005</year>
    <economy><GDP_ppp>1.006T</GDP_ppp>
      <export_partners>
        <item><trade_country>United States</trade_country><percentage>15.3%</percentage></item>
      </export_partners>
    </economy></country>)");

  // Mondial fragments from Figure 1: seas bordering countries via IDREF.
  add("mondial-us", R"(<mondial_country id="cty-us"><name>United States</name></mondial_country>)");
  add("mondial-china", R"(<mondial_country id="cty-china"><name>China</name></mondial_country>)");
  add("mondial-philippines",
      R"(<mondial_country id="cty-ph"><name>Philippines</name></mondial_country>)");
  add("mondial-pacific", R"(<sea id="sea-pacific"><name>Pacific Ocean</name>
    <bordering idref="cty-us"/><bordering idref="cty-ph"/></sea>)");
  add("mondial-chinasea", R"(<sea id="sea-china"><name>China Sea</name>
    <bordering idref="cty-china"/><bordering idref="cty-ph"/></sea>)");
}

}  // namespace seda::data
