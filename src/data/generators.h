#ifndef SEDA_DATA_GENERATORS_H_
#define SEDA_DATA_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "store/document_store.h"
#include "xml/document.h"

namespace seda::data {

/// Synthetic stand-in for the CIA World Factbook releases 2002-2007 the paper
/// combines (real data is not redistributable). The generator reproduces the
/// structural properties the paper reports:
///  * 1600 documents (6 annual releases over ~266 countries/territories),
///  * schema evolution: GDP is /country/economy/GDP before 2005 and
///    /country/economy/GDP_ppp from 2005 on,
///  * /country present in 1577 of 1600 documents (the rest are territories),
///  * the refugees path occurring in exactly 186 documents,
///  * "United States" occurring in 27 distinct contexts (paths),
///  * a long tail of optional elements yielding on the order of 2000
///    distinct paths and weak dataguide compression (~3x at 40%).
class WorldFactbookGenerator {
 public:
  struct Options {
    uint64_t seed = 42;
    int first_year = 2002;
    int last_year = 2007;
    size_t countries_per_year = 263;   // -> 1578 country docs over 6 years
    size_t territories_per_year = 4;   // separate root tag (not /country)
    size_t refugee_docs = 186;         // docs carrying the refugees path
    /// Scale factor (0,1] shrinking the collection for fast unit tests.
    double scale = 1.0;
  };

  explicit WorldFactbookGenerator(const Options& options) : options_(options) {}
  WorldFactbookGenerator() : WorldFactbookGenerator(Options{}) {}

  /// Generates all documents into `store`.
  void Populate(store::DocumentStore* store) const;

  /// The paths that can carry the text "United States" (27 contexts, §1).
  static std::vector<std::string> UnitedStatesContexts();

 private:
  Options options_;
};

/// Synthetic stand-in for the Mondial geographic dataset: one document per
/// entity (country, province, city, sea, river, organization), linked with
/// IDREF attributes — the non-tree edges of the paper's Figure 1. Table 1
/// shape: 5563 documents / 86 dataguides at the 40% threshold.
class MondialGenerator {
 public:
  struct Options {
    uint64_t seed = 7;
    size_t countries = 238;
    size_t provinces = 1455;
    size_t cities = 3528;
    size_t seas = 42;
    size_t rivers = 220;
    size_t organizations = 80;
    double scale = 1.0;
  };

  explicit MondialGenerator(const Options& options) : options_(options) {}
  MondialGenerator() : MondialGenerator(Options{}) {}

  void Populate(store::DocumentStore* store) const;

 private:
  Options options_;
};

/// Synthetic stand-in for a Google Base snapshot: flat, regular item feeds
/// drawn from a fixed set of item types. Table 1 shape: 10000 documents /
/// 88 dataguides (two-orders-of-magnitude reduction).
class GoogleBaseGenerator {
 public:
  struct Options {
    uint64_t seed = 11;
    size_t documents = 10000;
    size_t item_types = 88;
    double scale = 1.0;
  };

  explicit GoogleBaseGenerator(const Options& options) : options_(options) {}
  GoogleBaseGenerator() : GoogleBaseGenerator(Options{}) {}

  void Populate(store::DocumentStore* store) const;

 private:
  Options options_;
};

/// Synthetic stand-in for RecipeML: highly regular recipe markup with three
/// structural variants. Table 1 shape: 10988 documents / 3 dataguides.
class RecipeMLGenerator {
 public:
  struct Options {
    uint64_t seed = 13;
    size_t documents = 10988;
    double scale = 1.0;
  };

  explicit RecipeMLGenerator(const Options& options) : options_(options) {}
  RecipeMLGenerator() : RecipeMLGenerator(Options{}) {}

  void Populate(store::DocumentStore* store) const;

 private:
  Options options_;
};

/// Builds the small hand-crafted collection matching the paper's Figures 1-2
/// exactly: United States 2002/2006 (GDP vs GDP_ppp, import partners with
/// China/Canada/Mexico percentages), Mexico 2003/2004/2005 (import/export
/// partners containing "United States"), plus Mondial-style sea documents
/// ("Pacific Ocean", "China Sea") bordering countries via IDREF. Used by the
/// worked-example tests, the Fig. 3 bench and the trade_partners example.
void PopulateScenario(store::DocumentStore* store);

/// Names used for value-based (PK/FK) linking between Factbook and Mondial.
const std::vector<std::string>& CountryNamePool();

}  // namespace seda::data

#endif  // SEDA_DATA_GENERATORS_H_
