#ifndef SEDA_EXEC_CURSOR_H_
#define SEDA_EXEC_CURSOR_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "store/document_store.h"
#include "text/inverted_index.h"
#include "text/text_expr.h"

namespace seda::exec {

/// Score carried by structure-only candidates (a term whose search query is
/// "*"): tiny but non-zero so tuples binding them still rank by the content
/// terms. Shared between the cursor layer and the top-k engine.
inline constexpr double kStructureOnlyScore = 0.01;

/// Execution counters shared by every cursor of one query. The top-k engine
/// copies them into SearchStats, and the ablation benches report them.
struct CursorStats {
  /// Posting-list entries (or universe nodes) the cursors stepped over one by
  /// one. The old EvaluateNodes path materialized every sub-expression, so
  /// its cost was the sum of all intermediate match-vector sizes; this
  /// counter is the streaming equivalent.
  uint64_t postings_advanced = 0;
  /// Documents jumped over by Seek() without scanning their postings
  /// (measured as DocId distance at the seek target).
  uint64_t docs_skipped = 0;
};

/// A streaming match iterator over a full-text expression, composed directly
/// over posting lists (paper §4: sorted candidate streams consumed lazily).
///
/// Contract: matches are produced in strictly increasing NodeId (document)
/// order, each node at most once, with exactly the score and path that
/// InvertedIndex::EvaluateNodes assigns. Cursors never materialize
/// sub-expression results; NOT and "*" stream the node universe instead of
/// allocating it.
class MatchCursor {
 public:
  virtual ~MatchCursor() = default;

  /// True once the stream is exhausted.
  virtual bool AtEnd() const = 0;

  /// The match the cursor is positioned on. Requires !AtEnd().
  virtual const text::NodeMatch& Current() const = 0;

  /// Advances to the next match in document order.
  virtual void Next() = 0;

  /// Advances to the first match with node >= target; no-op when already
  /// positioned at or past it.
  virtual void Seek(const store::NodeId& target) = 0;

  /// Upper bound on the score of every remaining match. Constant-score
  /// cursors (NOT-rooted, "*") return their constant, which lets bounded
  /// selection stop draining once the bound cannot beat the kept minimum.
  virtual double MaxScore() const = 0;

  /// Seeks to the first match inside a document with id >= doc.
  void SeekToDoc(store::DocId doc) { Seek(store::NodeId{doc, xml::DeweyId()}); }
};

/// Builds the cursor tree for `expr` over `index`. When `context_filter` is
/// non-null, the path-set restriction is pushed below unions and
/// intersections onto the leaf cursors (filtering commutes with the boolean
/// operators because a node determines its path). `filter` and `stats` must
/// outlive the cursor.
std::unique_ptr<MatchCursor> BuildCursor(
    const text::InvertedIndex& index, const text::TextExpr& expr,
    const std::unordered_set<store::PathId>* context_filter, CursorStats* stats);

/// Drains a cursor into a vector — the compatibility bridge for callers that
/// still want EvaluateNodes-shaped output.
std::vector<text::NodeMatch> MaterializeCursor(MatchCursor* cursor);

/// Convenience: BuildCursor + MaterializeCursor. Produces exactly the output
/// of InvertedIndex::EvaluateNodes (optionally context-filtered), without
/// materializing any sub-expression.
std::vector<text::NodeMatch> EvaluateWithCursor(
    const text::InvertedIndex& index, const text::TextExpr& expr,
    const std::unordered_set<store::PathId>* context_filter = nullptr,
    CursorStats* stats = nullptr);

}  // namespace seda::exec

#endif  // SEDA_EXEC_CURSOR_H_
