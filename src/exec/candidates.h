#ifndef SEDA_EXEC_CANDIDATES_H_
#define SEDA_EXEC_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "exec/cursor.h"
#include "query/query.h"
#include "store/document_store.h"
#include "text/inverted_index.h"

namespace seda::exec {

/// One query term's candidate stream, built by draining its cursor tree
/// through a bounded top-N selection (score-descending, ties in document
/// order). This is the sorted access stream of the paper's §4 TA scan.
struct TermCandidates {
  /// Candidates sorted by descending content score; ties keep cursor
  /// (document) order — exactly the old stable_sort + truncate output.
  std::vector<text::NodeMatch> matches;
  /// Resolved context path ids (sorted, deduped). Populated when the term's
  /// context is restricted or the term is structure-only; shared with the
  /// context summary so ResolvePathIds runs once per query.
  std::vector<store::PathId> context_paths;
  bool context_restricted = false;
  /// True for (context, *) terms, whose candidates come from the context's
  /// paths at kStructureOnlyScore instead of from posting lists.
  bool structure_only = false;
  /// Cursor-level upper bound on any candidate score of this term.
  double max_score = 0.0;
};

/// The per-query candidate set: one cursor-built stream per term plus the
/// cursor execution counters. Built once per query and shared by the top-k
/// engine and the summary generators.
struct CandidateSet {
  std::vector<TermCandidates> terms;
  CursorStats stats;

  uint64_t CandidatesTotal() const {
    uint64_t total = 0;
    for (const TermCandidates& t : terms) total += t.matches.size();
    return total;
  }
};

/// Builds all candidate streams for `query`. `max_candidates_per_term`
/// bounds each stream (0 = unlimited) via an incremental bounded selection:
/// when a cursor's MaxScore can no longer beat the kept minimum — always the
/// case for constant-score cursors such as NOT-rooted expressions and
/// structure-only terms — the drain stops early instead of materializing the
/// node universe.
CandidateSet BuildCandidates(const text::InvertedIndex& index,
                             const query::Query& query,
                             size_t max_candidates_per_term);

}  // namespace seda::exec

#endif  // SEDA_EXEC_CANDIDATES_H_
