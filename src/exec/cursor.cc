#include "exec/cursor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace seda::exec {

namespace {

using store::NodeId;
using text::NodeMatch;
using text::NodePosting;
using text::TextExpr;

/// Sorted-access cursor over one term's posting list. Scores are computed
/// lazily per posting with the same tf/idf formula EvaluateNodes uses.
class TermCursor final : public MatchCursor {
 public:
  TermCursor(const std::vector<NodePosting>* postings, double idf,
             uint32_t max_tf, CursorStats* stats)
      : postings_(postings), idf_(idf), stats_(stats) {
    max_score_ = Score(max_tf);
    if (!postings_->empty()) SetCurrent();
  }

  bool AtEnd() const override { return pos_ >= postings_->size(); }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return max_score_; }

  void Next() override {
    ++pos_;
    if (!AtEnd()) SetCurrent();
  }

  void Seek(const NodeId& target) override {
    if (AtEnd() || !(current_.node < target)) return;
    auto begin = postings_->begin() + static_cast<ptrdiff_t>(pos_);
    auto it = std::lower_bound(begin, postings_->end(), target,
                               [](const NodePosting& p, const NodeId& t) {
                                 return p.node < t;
                               });
    store::DocId old_doc = current_.node.doc;
    pos_ = static_cast<size_t>(it - postings_->begin());
    if (!AtEnd()) {
      SetCurrent();
      SEDA_DCHECK(!(current_.node < target))
          << "term cursor seek went backwards";
      if (current_.node.doc > old_doc) {
        stats_->docs_skipped += current_.node.doc - old_doc;
      }
    }
  }

 private:
  double Score(size_t tf) const { return text::TermContentScore(idf_, tf); }

  void SetCurrent() {
    SEDA_DCHECK_LT(pos_, postings_->size())
        << "term cursor positioned past its posting list";
    const NodePosting& p = (*postings_)[pos_];
    current_ = {p.node, p.path, Score(p.positions.size())};
    ++stats_->postings_advanced;
  }

  const std::vector<NodePosting>* postings_;
  double idf_;
  CursorStats* stats_;
  double max_score_ = 0.0;
  size_t pos_ = 0;
  NodeMatch current_;
};

/// Position-intersection cursor for phrase queries: aligns every token's
/// posting list on one node, then verifies consecutive positions — the
/// streaming form of the EvaluateNodes kPhrase loop.
class PhraseCursor final : public MatchCursor {
 public:
  PhraseCursor(std::vector<const std::vector<NodePosting>*> lists, double score,
               CursorStats* stats)
      : lists_(std::move(lists)),
        cursor_(lists_.size(), 0),
        row_(lists_.size()),
        score_(score),
        stats_(stats) {
    for (const auto* list : lists_) {
      if (list->empty()) {
        exhausted_ = true;
        return;
      }
    }
    if (lists_.empty()) {
      exhausted_ = true;
      return;
    }
    AdvanceToMatch();
  }

  bool AtEnd() const override { return exhausted_; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return score_; }

  void Next() override {
    if (exhausted_) return;
    ++cursor_[0];
    ++stats_->postings_advanced;
    AdvanceToMatch();
  }

  void Seek(const NodeId& target) override {
    if (exhausted_ || !(current_.node < target)) return;
    const auto& lead = *lists_[0];
    auto begin = lead.begin() + static_cast<ptrdiff_t>(cursor_[0]);
    auto it = std::lower_bound(begin, lead.end(), target,
                               [](const NodePosting& p, const NodeId& t) {
                                 return p.node < t;
                               });
    store::DocId old_doc = current_.node.doc;
    cursor_[0] = static_cast<size_t>(it - lead.begin());
    if (cursor_[0] < lead.size() && lead[cursor_[0]].node.doc > old_doc) {
      stats_->docs_skipped += lead[cursor_[0]].node.doc - old_doc;
    }
    AdvanceToMatch();
  }

 private:
  /// From the leader's current posting onward, finds the next node where all
  /// token lists align and the phrase's positions are consecutive. Must stay
  /// semantically in lockstep with the EvaluateNodes kPhrase loop — the
  /// exec_test equivalence suite (incl. random-expression property tests)
  /// guards against divergence.
  void AdvanceToMatch() {
    const auto& lead = *lists_[0];
    for (; cursor_[0] < lead.size(); ++cursor_[0], ++stats_->postings_advanced) {
      const NodePosting& first = lead[cursor_[0]];
      bool aligned = true;
      row_[0] = &first;
      for (size_t t = 1; t < lists_.size(); ++t) {
        const auto& list = *lists_[t];
        size_t& c = cursor_[t];
        while (c < list.size() && list[c].node < first.node) {
          ++c;
          ++stats_->postings_advanced;
        }
        if (c >= list.size() || !(list[c].node == first.node)) {
          aligned = false;
          break;
        }
        row_[t] = &list[c];
      }
      if (!aligned) continue;
      for (uint32_t p0 : first.positions) {
        bool all = true;
        for (size_t t = 1; t < row_.size(); ++t) {
          const auto& positions = row_[t]->positions;
          if (!std::binary_search(positions.begin(), positions.end(),
                                  p0 + static_cast<uint32_t>(t))) {
            all = false;
            break;
          }
        }
        if (all) {
          current_ = {first.node, first.path, score_};
          return;
        }
      }
    }
    exhausted_ = true;
  }

  std::vector<const std::vector<NodePosting>*> lists_;
  std::vector<size_t> cursor_;
  std::vector<const NodePosting*> row_;  ///< alignment scratch, reused per step
  double score_;
  CursorStats* stats_;
  bool exhausted_ = false;
  NodeMatch current_;
};

/// Streams every element/attribute node of the collection in document order
/// — the lazy replacement for materializing the kAll universe. Iteration is
/// an explicit pre-order stack per document, so memory stays O(tree depth).
class UniverseCursor final : public MatchCursor {
 public:
  UniverseCursor(const store::DocumentStore& store, CursorStats* stats)
      : store_(store), stats_(stats) {
    LoadDoc(0);
    AdvanceToNode();
  }

  bool AtEnd() const override { return exhausted_; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return 0.0; }

  void Next() override {
    if (exhausted_) return;
    pending_current_ = false;
    AdvanceToNode();
  }

  void Seek(const NodeId& target) override {
    if (exhausted_ || !(current_.node < target)) return;
    if (target.doc > doc_) {
      stats_->docs_skipped += target.doc - doc_;
      LoadDoc(target.doc);
      pending_current_ = false;
    }
    seek_target_ = target;
    seeking_ = true;
    pending_current_ = false;
    AdvanceToNode();
    seeking_ = false;
  }

 private:
  void LoadDoc(store::DocId doc) {
    doc_ = doc;
    stack_.clear();
    if (doc_ < store_.DocumentCount()) {
      if (xml::Node* root = store_.document(doc_).root()) stack_.push_back(root);
    }
  }

  /// Pops the pre-order stack until positioned on an element/attribute node
  /// (>= the seek target while seeking), rolling over to the next document
  /// when a tree is exhausted. Subtrees that cannot contain the seek target
  /// are dropped without visiting their nodes.
  void AdvanceToNode() {
    if (pending_current_) return;
    for (;;) {
      if (stack_.empty()) {
        if (doc_ + 1 >= store_.DocumentCount()) {
          exhausted_ = true;
          return;
        }
        LoadDoc(doc_ + 1);
        continue;
      }
      xml::Node* node = stack_.back();
      stack_.pop_back();
      if (seeking_ && doc_ == seek_target_.doc &&
          node->dewey() < seek_target_.dewey &&
          !node->dewey().IsAncestorOrSelf(seek_target_.dewey)) {
        // The whole subtree precedes the target in document order.
        continue;
      }
      const auto& children = node->children();
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack_.push_back(it->get());
      }
      if (node->kind() == xml::NodeKind::kText) continue;
      if (seeking_ && doc_ == seek_target_.doc &&
          node->dewey() < seek_target_.dewey) {
        continue;  // ancestor of the target: visited but before it
      }
      ++stats_->postings_advanced;
      NodeId id{doc_, node->dewey()};
      current_ = {id, store_.paths().Find(node->ContextPath()), 0.0};
      pending_current_ = true;
      return;
    }
  }

  const store::DocumentStore& store_;
  CursorStats* stats_;
  store::DocId doc_ = 0;
  std::vector<xml::Node*> stack_;
  NodeMatch current_;
  bool pending_current_ = false;
  bool exhausted_ = false;
  bool seeking_ = false;
  NodeId seek_target_;
};

/// The context-restricted node universe: a doc-ordered merge over the
/// per-path node lists of the allowed paths (disjoint — a node has exactly
/// one path), instead of scanning every node and discarding. This is what
/// "NOT x" or "*" inside a restricted term iterates, so a term like
/// (name, NOT x) touches |name nodes| postings rather than the collection.
class PathUnionCursor final : public MatchCursor {
 public:
  PathUnionCursor(const text::InvertedIndex& index,
                  std::vector<store::PathId> paths, CursorStats* stats)
      : stats_(stats) {
    std::sort(paths.begin(), paths.end());
    for (store::PathId path : paths) {
      const std::vector<NodeId>& nodes = index.NodesWithPath(path);
      if (!nodes.empty()) lists_.push_back({path, &nodes, 0});
    }
    for (size_t i = 0; i < lists_.size(); ++i) heap_.push_back(i);
    std::make_heap(heap_.begin(), heap_.end(), After());
    Position();
  }

  bool AtEnd() const override { return exhausted_; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return 0.0; }

  void Next() override {
    if (exhausted_) return;
    List& list = lists_[top_];
    ++list.pos;
    if (list.pos < list.nodes->size()) {
      heap_.push_back(top_);
      std::push_heap(heap_.begin(), heap_.end(), After());
    }
    Position();
  }

  void Seek(const NodeId& target) override {
    if (exhausted_ || !(current_.node < target)) return;
    heap_.push_back(top_);
    std::vector<size_t> alive;
    for (size_t i : heap_) {
      List& list = lists_[i];
      auto begin = list.nodes->begin() + static_cast<ptrdiff_t>(list.pos);
      auto it = std::lower_bound(begin, list.nodes->end(), target);
      list.pos = static_cast<size_t>(it - list.nodes->begin());
      if (list.pos < list.nodes->size()) alive.push_back(i);
    }
    if (target.doc > current_.node.doc) {
      stats_->docs_skipped += target.doc - current_.node.doc;
    }
    heap_ = std::move(alive);
    std::make_heap(heap_.begin(), heap_.end(), After());
    Position();
  }

 private:
  struct List {
    store::PathId path;
    const std::vector<NodeId>* nodes;
    size_t pos;
    const NodeId& Front() const { return (*nodes)[pos]; }
  };

  /// Heap "less": list whose frontier comes later sinks, so front = minimum.
  struct AfterCmp {
    const std::vector<List>* lists;
    bool operator()(size_t a, size_t b) const {
      return (*lists)[b].Front() < (*lists)[a].Front();
    }
  };
  AfterCmp After() { return AfterCmp{&lists_}; }

  void Position() {
    if (heap_.empty()) {
      exhausted_ = true;
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), After());
    top_ = heap_.back();
    heap_.pop_back();
    const List& list = lists_[top_];
    SEDA_DCHECK_LT(list.pos, list.nodes->size())
        << "path-union heap held an exhausted list";
    current_ = {list.Front(), list.path, 0.0};
    ++stats_->postings_advanced;
  }

  std::vector<List> lists_;
  std::vector<size_t> heap_;  ///< lists with pending frontiers (top_ excluded)
  size_t top_ = 0;            ///< list currently providing current_
  CursorStats* stats_;
  bool exhausted_ = false;
  NodeMatch current_;
};

/// Conjunction: children are aligned on one node by seeking everyone to the
/// maximum frontier; the combined score is the sum of the children's scores
/// (the left-fold of IntersectMatches).
class AndCursor final : public MatchCursor {
 public:
  explicit AndCursor(std::vector<std::unique_ptr<MatchCursor>> children)
      : children_(std::move(children)) {
    max_score_ = 0.0;
    for (const auto& child : children_) max_score_ += child->MaxScore();
    Align();
  }

  bool AtEnd() const override { return exhausted_; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return max_score_; }

  void Next() override {
    if (exhausted_) return;
    for (auto& child : children_) child->Next();
    Align();
  }

  void Seek(const NodeId& target) override {
    if (exhausted_ || !(current_.node < target)) return;
    for (auto& child : children_) child->Seek(target);
    Align();
  }

 private:
  void Align() {
    for (;;) {
      const NodeId* frontier = nullptr;
      bool all_equal = true;
      for (auto& child : children_) {
        if (child->AtEnd()) {
          exhausted_ = true;
          return;
        }
        const NodeId& node = child->Current().node;
        if (frontier == nullptr || *frontier < node) {
          if (frontier != nullptr) all_equal = false;
          frontier = &node;
        } else if (node < *frontier) {
          all_equal = false;
        }
      }
      if (all_equal) {
        double score = 0.0;
        for (auto& child : children_) score += child->Current().score;
        const NodeMatch& lead = children_.front()->Current();
        current_ = {lead.node, lead.path, score};
        return;
      }
      // Copy the frontier: seeking children may invalidate the reference.
      NodeId target = *frontier;
      for (auto& child : children_) {
        if (child->Current().node < target) child->Seek(target);
      }
    }
  }

  std::vector<std::unique_ptr<MatchCursor>> children_;
  double max_score_ = 0.0;
  bool exhausted_ = false;
  NodeMatch current_;
};

/// Disjunction: a doc-ordered k-way heap merge. Children positioned on the
/// same node are combined by summing scores in child order (the left-fold of
/// UnionMatches).
class OrCursor final : public MatchCursor {
 public:
  explicit OrCursor(std::vector<std::unique_ptr<MatchCursor>> children)
      : children_(std::move(children)) {
    max_score_ = 0.0;
    for (const auto& child : children_) max_score_ += child->MaxScore();
    for (size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i]->AtEnd()) heap_.push_back(i);
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapAfter());
    Combine();
  }

  bool AtEnd() const override { return exhausted_; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return max_score_; }

  void Next() override {
    if (exhausted_) return;
    for (size_t i : matched_) {
      children_[i]->Next();
      if (!children_[i]->AtEnd()) {
        heap_.push_back(i);
        std::push_heap(heap_.begin(), heap_.end(), HeapAfter());
      }
    }
    matched_.clear();
    Combine();
  }

  void Seek(const NodeId& target) override {
    if (exhausted_ || !(current_.node < target)) return;
    // Matched children sit before the target too; move everyone lagging.
    for (size_t i : matched_) heap_.push_back(i);
    matched_.clear();
    std::vector<size_t> alive;
    for (size_t i : heap_) {
      if (children_[i]->Current().node < target) children_[i]->Seek(target);
      if (!children_[i]->AtEnd()) alive.push_back(i);
    }
    heap_ = std::move(alive);
    std::make_heap(heap_.begin(), heap_.end(), HeapAfter());
    Combine();
  }

 private:
  /// Heap "less": true when a's frontier comes after b's, so the heap front
  /// is the minimum node; equal nodes break by child index to keep the
  /// left-fold combination order.
  struct HeapAfterCmp {
    const std::vector<std::unique_ptr<MatchCursor>>* children;
    bool operator()(size_t a, size_t b) const {
      const NodeId& na = (*children)[a]->Current().node;
      const NodeId& nb = (*children)[b]->Current().node;
      if (nb < na) return true;
      if (na < nb) return false;
      return a > b;
    }
  };
  HeapAfterCmp HeapAfter() { return HeapAfterCmp{&children_}; }

  /// Pops every child positioned on the minimum node and combines them.
  void Combine() {
    if (heap_.empty()) {
      exhausted_ = true;
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), HeapAfter());
    size_t first = heap_.back();
    heap_.pop_back();
    SEDA_DCHECK(!children_[first]->AtEnd())
        << "or-cursor heap held an exhausted child";
    matched_.push_back(first);
    const NodeId& node = children_[first]->Current().node;
    while (!heap_.empty() && children_[heap_.front()]->Current().node == node) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter());
      matched_.push_back(heap_.back());
      heap_.pop_back();
    }
    // Children-index order so score accumulation matches the left fold.
    std::sort(matched_.begin(), matched_.end());
    double score = 0.0;
    for (size_t i : matched_) score += children_[i]->Current().score;
    const NodeMatch& lead = children_[matched_.front()]->Current();
    current_ = {lead.node, lead.path, score};
  }

  std::vector<std::unique_ptr<MatchCursor>> children_;
  std::vector<size_t> heap_;     ///< children with pending frontiers
  std::vector<size_t> matched_;  ///< children positioned on current_
  double max_score_ = 0.0;
  bool exhausted_ = false;
  NodeMatch current_;
};

/// Anti-join ("NOT x", and the negative legs of conjunctions): streams
/// `positive` while seeking `negative` alongside it; a
/// positive match is emitted only when the negative stream does not contain
/// its node. This is NOT x without materializing the node universe.
class NotCursor final : public MatchCursor {
 public:
  NotCursor(std::unique_ptr<MatchCursor> positive,
             std::unique_ptr<MatchCursor> negative)
      : positive_(std::move(positive)), negative_(std::move(negative)) {
    SkipExcluded();
  }

  bool AtEnd() const override { return positive_->AtEnd(); }
  const NodeMatch& Current() const override { return positive_->Current(); }
  double MaxScore() const override { return positive_->MaxScore(); }

  void Next() override {
    positive_->Next();
    SkipExcluded();
  }

  void Seek(const NodeId& target) override {
    positive_->Seek(target);
    SkipExcluded();
  }

 private:
  void SkipExcluded() {
    while (!positive_->AtEnd()) {
      const NodeId& node = positive_->Current().node;
      negative_->Seek(node);
      SEDA_DCHECK(negative_->AtEnd() || !(negative_->Current().node < node))
          << "anti-join negative stream fell behind its seek target";
      if (negative_->AtEnd() || !(negative_->Current().node == node)) return;
      positive_->Next();
    }
  }

  std::unique_ptr<MatchCursor> positive_;
  std::unique_ptr<MatchCursor> negative_;
};

/// Path-set restriction over a child cursor. The builder pushes these below
/// unions/intersections onto the leaves (restriction commutes with the
/// boolean operators since a node determines its path).
class ContextFilterCursor final : public MatchCursor {
 public:
  ContextFilterCursor(std::unique_ptr<MatchCursor> child,
                      const std::unordered_set<store::PathId>* allowed)
      : child_(std::move(child)), allowed_(allowed) {
    SkipFiltered();
  }

  bool AtEnd() const override { return child_->AtEnd(); }
  const NodeMatch& Current() const override { return child_->Current(); }
  double MaxScore() const override { return child_->MaxScore(); }

  void Next() override {
    child_->Next();
    SkipFiltered();
  }

  void Seek(const NodeId& target) override {
    child_->Seek(target);
    SkipFiltered();
  }

 private:
  void SkipFiltered() {
    while (!child_->AtEnd() && !allowed_->count(child_->Current().path)) {
      child_->Next();
    }
  }

  std::unique_ptr<MatchCursor> child_;
  const std::unordered_set<store::PathId>* allowed_;
};

/// An always-exhausted cursor (e.g. an empty phrase).
class EmptyCursor final : public MatchCursor {
 public:
  bool AtEnd() const override { return true; }
  const NodeMatch& Current() const override { return current_; }
  double MaxScore() const override { return 0.0; }
  void Next() override {}
  void Seek(const NodeId&) override {}

 private:
  NodeMatch current_;
};

std::unique_ptr<MatchCursor> WrapFilter(
    std::unique_ptr<MatchCursor> cursor,
    const std::unordered_set<store::PathId>* filter) {
  if (filter == nullptr) return cursor;
  return std::make_unique<ContextFilterCursor>(std::move(cursor), filter);
}

std::unique_ptr<MatchCursor> MakeUniverse(
    const text::InvertedIndex& index,
    const std::unordered_set<store::PathId>* filter, CursorStats* stats) {
  if (filter == nullptr) {
    return std::make_unique<UniverseCursor>(index.store(), stats);
  }
  // Restricted universe: iterate only the allowed paths' node lists instead
  // of scanning the collection and discarding.
  std::vector<store::PathId> paths(filter->begin(), filter->end());
  return std::make_unique<PathUnionCursor>(index, std::move(paths), stats);
}

}  // namespace

std::unique_ptr<MatchCursor> BuildCursor(
    const text::InvertedIndex& index, const text::TextExpr& expr,
    const std::unordered_set<store::PathId>* context_filter,
    CursorStats* stats) {
  switch (expr.kind) {
    case TextExpr::Kind::kAll:
      return MakeUniverse(index, context_filter, stats);
    case TextExpr::Kind::kTerm:
      return WrapFilter(
          std::make_unique<TermCursor>(&index.Postings(expr.term),
                                       index.Idf(expr.term),
                                       index.MaxTermFrequency(expr.term), stats),
          context_filter);
    case TextExpr::Kind::kPhrase: {
      if (expr.phrase.empty()) return std::make_unique<EmptyCursor>();
      std::vector<const std::vector<NodePosting>*> lists;
      double score = 0.0;
      for (const auto& token : expr.phrase) {
        lists.push_back(&index.Postings(token));
        score += index.Idf(token);
      }
      return WrapFilter(
          std::make_unique<PhraseCursor>(std::move(lists), score, stats),
          context_filter);
    }
    case TextExpr::Kind::kAnd: {
      std::vector<std::unique_ptr<MatchCursor>> positives;
      std::vector<const TextExpr*> negatives;
      for (const auto& child : expr.children) {
        if (child->kind == TextExpr::Kind::kNot) {
          negatives.push_back(child->children.front().get());
        } else {
          positives.push_back(BuildCursor(index, *child, context_filter, stats));
        }
      }
      std::unique_ptr<MatchCursor> cursor;
      if (positives.empty()) {
        cursor = MakeUniverse(index, context_filter, stats);
      } else if (positives.size() == 1) {
        cursor = std::move(positives.front());
      } else {
        cursor = std::make_unique<AndCursor>(std::move(positives));
      }
      for (const TextExpr* neg : negatives) {
        cursor = std::make_unique<NotCursor>(
            std::move(cursor), BuildCursor(index, *neg, context_filter, stats));
      }
      return cursor;
    }
    case TextExpr::Kind::kOr: {
      std::vector<std::unique_ptr<MatchCursor>> children;
      for (const auto& child : expr.children) {
        children.push_back(BuildCursor(index, *child, context_filter, stats));
      }
      return std::make_unique<OrCursor>(std::move(children));
    }
    case TextExpr::Kind::kNot:
      return std::make_unique<NotCursor>(
          MakeUniverse(index, context_filter, stats),
          BuildCursor(index, *expr.children.front(), context_filter, stats));
  }
  return std::make_unique<EmptyCursor>();
}

std::vector<text::NodeMatch> MaterializeCursor(MatchCursor* cursor) {
  std::vector<text::NodeMatch> out;
  for (; !cursor->AtEnd(); cursor->Next()) {
    out.push_back(cursor->Current());
  }
  return out;
}

std::vector<text::NodeMatch> EvaluateWithCursor(
    const text::InvertedIndex& index, const text::TextExpr& expr,
    const std::unordered_set<store::PathId>* context_filter,
    CursorStats* stats) {
  CursorStats local;
  if (stats == nullptr) stats = &local;
  auto cursor = BuildCursor(index, expr, context_filter, stats);
  return MaterializeCursor(cursor.get());
}

}  // namespace seda::exec
