#include "exec/candidates.h"

#include <algorithm>
#include <unordered_set>

#include "common/bounded_topn.h"

namespace seda::exec {

namespace {

/// Keeps the `cap` best matches under (score desc, arrival asc) — the exact
/// set and order std::stable_sort-by-score + resize(cap) used to produce,
/// but in O(n log cap) and without holding the full stream. Arrival-order
/// tie-breaking comes from BoundedTopN's strict displacement: a newcomer
/// (always the largest arrival index) never replaces an equal-score keeper.
class TopScoreSelector {
 public:
  explicit TopScoreSelector(size_t cap) : top_(cap, Better) {}

  void Offer(const text::NodeMatch& match) {
    top_.Insert(Entry{match, next_seq_++});
  }

  /// True when no remaining cursor output (bounded by `max_score`) can be
  /// accepted anymore, so draining can stop.
  bool Saturated(double max_score) const {
    return top_.Full() && top_.Worst().match.score >= max_score;
  }

  std::vector<text::NodeMatch> Take() {
    std::vector<text::NodeMatch> out;
    for (Entry& e : top_.TakeSorted()) out.push_back(std::move(e.match));
    return out;
  }

 private:
  struct Entry {
    text::NodeMatch match;
    uint64_t seq = 0;
  };
  /// Ranking order ("less" = ranks before): score desc, then arrival asc.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.match.score != b.match.score) return a.match.score > b.match.score;
    return a.seq < b.seq;
  }

  uint64_t next_seq_ = 0;
  BoundedTopN<Entry, bool (*)(const Entry&, const Entry&)> top_;
};

/// Structure-only term: candidates are the context's path occurrences at a
/// constant tiny score. Enumeration is path-major (ResolvePathIds order,
/// document order within a path) — the order the old engine produced — and
/// stops at the cap since every score ties.
TermCandidates BuildStructureOnlyTerm(const text::InvertedIndex& index,
                                      const query::QueryTerm& term, size_t cap,
                                      CursorStats* stats) {
  TermCandidates out;
  out.structure_only = true;
  out.max_score = kStructureOnlyScore;
  out.context_restricted = !term.context.unrestricted();
  out.context_paths = term.context.ResolvePathIds(index.store().paths());
  for (store::PathId path : out.context_paths) {
    for (const store::NodeId& node : index.NodesWithPath(path)) {
      ++stats->postings_advanced;
      out.matches.push_back({node, path, kStructureOnlyScore});
      if (cap > 0 && out.matches.size() >= cap) return out;
    }
  }
  return out;
}

TermCandidates BuildContentTerm(const text::InvertedIndex& index,
                                const query::QueryTerm& term, size_t cap,
                                CursorStats* stats) {
  TermCandidates out;
  out.context_restricted = !term.context.unrestricted();
  std::unordered_set<store::PathId> allowed;
  const std::unordered_set<store::PathId>* filter = nullptr;
  if (out.context_restricted) {
    out.context_paths = term.context.ResolvePathIds(index.store().paths());
    allowed.insert(out.context_paths.begin(), out.context_paths.end());
    filter = &allowed;
  }
  auto cursor = BuildCursor(index, *term.search, filter, stats);
  out.max_score = cursor->MaxScore();
  TopScoreSelector selector(cap);
  for (; !cursor->AtEnd(); cursor->Next()) {
    selector.Offer(cursor->Current());
    if (selector.Saturated(cursor->MaxScore())) break;
  }
  out.matches = selector.Take();
  return out;
}

}  // namespace

CandidateSet BuildCandidates(const text::InvertedIndex& index,
                             const query::Query& query,
                             size_t max_candidates_per_term) {
  CandidateSet set;
  set.terms.reserve(query.terms.size());
  for (const query::QueryTerm& term : query.terms) {
    bool structure_only =
        !term.search || term.search->kind == text::TextExpr::Kind::kAll;
    set.terms.push_back(
        structure_only
            ? BuildStructureOnlyTerm(index, term, max_candidates_per_term,
                                     &set.stats)
            : BuildContentTerm(index, term, max_candidates_per_term,
                               &set.stats));
  }
  return set;
}

}  // namespace seda::exec
