#include "twig/twig.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"
#include "exec/cursor.h"

namespace seda::twig {

namespace {

using store::NodeId;
using store::NodeIdHasher;

/// Amortized cooperative deadline. Expired() reads the clock only every
/// kStride calls so the inner matching/enumeration loops stay branch-cheap;
/// once the deadline passes the state latches and every caller unwinds.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(uint64_t deadline_ms) {
    if (deadline_ms > 0) {
      armed_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
    }
  }

  bool Expired() {
    if (!armed_ || expired_) return expired_;
    if (++calls_ % kStride != 0) return false;
    expired_ = std::chrono::steady_clock::now() >= deadline_;
    return expired_;
  }

  /// Whether the deadline ever fired (no clock read; for the final report).
  bool expired() const { return expired_; }

 private:
  static constexpr uint32_t kStride = 256;
  std::chrono::steady_clock::time_point deadline_{};
  uint32_t calls_ = 0;
  bool armed_ = false;
  bool expired_ = false;
};

size_t PathDepth(const std::string& path) {
  return SplitSkipEmpty(path, '/').size();
}

std::string PrefixAt(const std::string& path, size_t depth) {
  auto labels = SplitSkipEmpty(path, '/');
  std::string out;
  for (size_t i = 0; i < depth && i < labels.size(); ++i) {
    out += "/" + labels[i];
  }
  return out;
}

bool IsPrefixPath(const std::string& prefix, const std::string& path) {
  if (prefix == path) return true;
  return StartsWith(path, prefix + "/");
}

NodeId AncestorAt(const NodeId& node, size_t depth) {
  const auto& comps = node.dewey.components();
  std::vector<uint32_t> prefix(comps.begin(),
                               comps.begin() + std::min(depth, comps.size()));
  return NodeId{node.doc, xml::DeweyId(std::move(prefix))};
}

size_t CommonLabelDepth(const std::string& a, const std::string& b) {
  auto la = SplitSkipEmpty(a, '/');
  auto lb = SplitSkipEmpty(b, '/');
  size_t d = 0;
  while (d < la.size() && d < lb.size() && la[d] == lb[d]) ++d;
  return d;
}

/// Candidate endpoint instances for a link anchored at `endpoint_path`,
/// relative to the bound node `node` whose context is `term_path`. When the
/// endpoint lies on the node's root-to-leaf path it is the unique ancestor;
/// otherwise it branches off a shared ancestor (e.g. /sea/bordering relative
/// to /sea/name) and every instance under that ancestor qualifies.
std::vector<NodeId> LinkEndpointInstances(const text::InvertedIndex& index,
                                          const NodeId& node,
                                          const std::string& term_path,
                                          const std::string& endpoint_path) {
  if (IsPrefixPath(endpoint_path, term_path)) {
    return {AncestorAt(node, PathDepth(endpoint_path))};
  }
  size_t anchor_depth = CommonLabelDepth(endpoint_path, term_path);
  NodeId anchor = AncestorAt(node, anchor_depth);
  std::vector<NodeId> out;
  store::PathId pid = index.store().paths().Find(endpoint_path);
  for (const NodeId& candidate : index.NodesWithPath(pid)) {
    if (candidate.doc != node.doc) continue;
    if (anchor.dewey.IsAncestorOrSelf(candidate.dewey)) out.push_back(candidate);
  }
  return out;
}

/// Union-find.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// The resolved execution plan shared by the holistic and the naive engine,
/// so both implement identical semantics.
struct Plan {
  size_t term_count = 0;
  std::vector<size_t> twig_of_term;                 // term -> twig id (dense)
  size_t twig_count = 0;
  /// Effective tree-join depth for every same-twig pair (i<j), after
  /// union-find closure over the user's chosen connections plus defaults.
  std::map<std::pair<size_t, size_t>, size_t> tree_depth;
  std::vector<ChosenConnection> links;
};

Result<Plan> BuildPlan(const std::vector<TermBinding>& terms,
                       const std::vector<ChosenConnection>& connections) {
  Plan plan;
  const size_t m = terms.size();
  plan.term_count = m;
  if (m == 0) return Status::InvalidArgument("no terms");
  for (const TermBinding& term : terms) {
    if (term.path.empty() || term.path[0] != '/') {
      return Status::InvalidArgument("term context must be an absolute path, got '" +
                                     term.path + "'");
    }
  }

  // Validate connections and split into tree constraints vs links.
  std::vector<ChosenConnection> tree_conns;
  std::set<std::pair<size_t, size_t>> linked_pairs;
  for (const ChosenConnection& conn : connections) {
    if (conn.term_a >= m || conn.term_b >= m || conn.term_a == conn.term_b) {
      return Status::InvalidArgument("connection references invalid term indices");
    }
    if (conn.is_link) {
      if (CommonLabelDepth(conn.source_path, terms[conn.term_a].path) == 0) {
        return Status::InvalidArgument("link source " + conn.source_path +
                                       " shares no document root with " +
                                       terms[conn.term_a].path);
      }
      if (CommonLabelDepth(conn.target_path, terms[conn.term_b].path) == 0) {
        return Status::InvalidArgument("link target " + conn.target_path +
                                       " shares no document root with " +
                                       terms[conn.term_b].path);
      }
      plan.links.push_back(conn);
      linked_pairs.emplace(std::min(conn.term_a, conn.term_b),
                           std::max(conn.term_a, conn.term_b));
    } else {
      if (!IsPrefixPath(conn.join_path, terms[conn.term_a].path) ||
          !IsPrefixPath(conn.join_path, terms[conn.term_b].path)) {
        return Status::InvalidArgument("tree join path " + conn.join_path +
                                       " is not a common ancestor context");
      }
      tree_conns.push_back(conn);
    }
  }

  // Twig partition: terms united by tree connections; unconstrained pairs
  // default to the same twig when their paths share the document root label
  // and the pair is not explicitly link-joined.
  UnionFind twig_uf(m);
  for (const ChosenConnection& conn : tree_conns) {
    twig_uf.Union(conn.term_a, conn.term_b);
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      if (linked_pairs.count({i, j})) continue;
      if (PrefixAt(terms[i].path, 1) == PrefixAt(terms[j].path, 1)) {
        twig_uf.Union(i, j);
      }
    }
  }
  std::map<size_t, size_t> twig_ids;
  plan.twig_of_term.resize(m);
  for (size_t i = 0; i < m; ++i) {
    size_t root = twig_uf.Find(i);
    auto [it, inserted] = twig_ids.emplace(root, twig_ids.size());
    plan.twig_of_term[i] = it->second;
  }
  plan.twig_count = twig_ids.size();

  // Instance-sharing closure: union (term, depth) slots for every tree
  // connection (all depths <= join depth), and by default at the deepest
  // common prefix for unconstrained same-twig pairs.
  size_t max_depth = 0;
  for (const TermBinding& term : terms) {
    max_depth = std::max(max_depth, PathDepth(term.path));
  }
  auto slot = [max_depth](size_t term, size_t depth) {
    return term * (max_depth + 1) + depth;
  };
  UnionFind share_uf(m * (max_depth + 1));

  auto unify_to_depth = [&](size_t a, size_t b, size_t depth) {
    for (size_t d = 1; d <= depth; ++d) share_uf.Union(slot(a, d), slot(b, d));
  };
  std::set<std::pair<size_t, size_t>> constrained;
  for (const ChosenConnection& conn : tree_conns) {
    unify_to_depth(conn.term_a, conn.term_b, PathDepth(conn.join_path));
    constrained.emplace(std::min(conn.term_a, conn.term_b),
                        std::max(conn.term_a, conn.term_b));
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      if (plan.twig_of_term[i] != plan.twig_of_term[j]) continue;
      if (constrained.count({i, j}) || linked_pairs.count({i, j})) continue;
      // Default: deepest common prefix.
      size_t d = 0;
      size_t limit = std::min(PathDepth(terms[i].path), PathDepth(terms[j].path));
      while (d < limit && PrefixAt(terms[i].path, d + 1) ==
                              PrefixAt(terms[j].path, d + 1)) {
        ++d;
      }
      unify_to_depth(i, j, d);
    }
  }

  // Effective depths after closure + validation.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      if (plan.twig_of_term[i] != plan.twig_of_term[j]) continue;
      size_t limit = std::min(PathDepth(terms[i].path), PathDepth(terms[j].path));
      size_t d_eff = 0;
      for (size_t d = 1; d <= limit; ++d) {
        if (share_uf.Find(slot(i, d)) == share_uf.Find(slot(j, d))) d_eff = d;
      }
      if (d_eff == 0) {
        return Status::InvalidArgument(
            "terms " + std::to_string(i) + " and " + std::to_string(j) +
            " share a twig but no common instance; add a link connection");
      }
      if (PrefixAt(terms[i].path, d_eff) != PrefixAt(terms[j].path, d_eff)) {
        return Status::InvalidArgument("inconsistent tree joins: contexts diverge "
                                       "above the requested join depth");
      }
      if (d_eff == PathDepth(terms[i].path) && d_eff == PathDepth(terms[j].path)) {
        return Status::InvalidArgument(
            "terms " + std::to_string(i) + " and " + std::to_string(j) +
            " would always bind the same node; drop one of them");
      }
      plan.tree_depth[{i, j}] = d_eff;
    }
  }
  return plan;
}

bool EdgeMatches(const graph::DataGraph& graph, const NodeId& s, const NodeId& t,
                 const std::string& label) {
  for (const graph::Edge& edge : graph.NonTreeEdges(s)) {
    bool touches = (edge.from == s && edge.to == t) || (edge.to == s && edge.from == t);
    if (!touches) continue;
    if (label.empty() || edge.label == label) return true;
  }
  return false;
}

}  // namespace

Result<ChosenConnection> ChosenConnection::FromDataguideConnection(
    size_t term_a, size_t term_b, const dataguide::Connection& connection) {
  ChosenConnection out;
  out.term_a = term_a;
  out.term_b = term_b;
  size_t link_count = 0;
  for (const auto& step : connection.steps) {
    if (step.move == dataguide::Connection::Move::kLink) ++link_count;
  }
  if (link_count == 0) {
    out.is_link = false;
    // The LCA is the shallowest context visited along the walk.
    std::string best = connection.from_path;
    size_t best_depth = PathDepth(best);
    for (const auto& step : connection.steps) {
      size_t depth = PathDepth(step.path);
      if (depth < best_depth) {
        best_depth = depth;
        best = step.path;
      }
    }
    out.join_path = best;
    return out;
  }
  if (link_count > 1) {
    return Status::Unimplemented("multi-link connections are not executable yet");
  }
  out.is_link = true;
  std::string current = connection.from_path;
  for (const auto& step : connection.steps) {
    if (step.move == dataguide::Connection::Move::kLink) {
      out.source_path = current;
      out.target_path = step.path;
      out.link_label = step.label;
      break;
    }
    current = step.path;
  }
  return out;
}

std::vector<std::vector<text::NodeMatch>> CompleteResultGenerator::TermStreams(
    const std::vector<TermBinding>& terms) const {
  const store::PathDictionary& dict = index_->store().paths();
  std::vector<std::vector<text::NodeMatch>> streams;
  streams.reserve(terms.size());
  for (const TermBinding& term : terms) {
    std::vector<text::NodeMatch> matches;
    store::PathId pid = dict.Find(term.path);
    if (pid == store::kInvalidPathId) {
      streams.push_back(std::move(matches));
      continue;
    }
    if (term.search == nullptr || term.search->kind == text::TextExpr::Kind::kAll) {
      for (const NodeId& node : index_->NodesWithPath(pid)) {
        matches.push_back({node, pid, 0.0});
      }
      // NodesWithPath is per-path append order; normalize to Dewey order.
      std::sort(matches.begin(), matches.end(),
                [](const text::NodeMatch& a, const text::NodeMatch& b) {
                  return a.node < b.node;
                });
    } else {
      // Streamed through the cursor layer with the chosen context pushed
      // down to the leaves; cursors emit in document (Dewey) order, the
      // order the holistic structural join consumes.
      std::unordered_set<store::PathId> allowed{pid};
      exec::CursorStats cursor_stats;
      matches = exec::EvaluateWithCursor(*index_, *term.search, &allowed,
                                         &cursor_stats);
    }
    streams.push_back(std::move(matches));
  }
  return streams;
}

Result<CompleteResult> CompleteResultGenerator::Execute(
    const std::vector<TermBinding>& terms,
    const std::vector<ChosenConnection>& connections,
    const ExecuteOptions& options) const {
  auto plan_result = BuildPlan(terms, connections);
  if (!plan_result.ok()) return plan_result.status();
  const Plan& plan = plan_result.value();
  const size_t m = terms.size();
  DeadlineGuard guard(options.deadline_ms);
  obs::ScopedSpan streams_span(options.trace, "term_streams");
  auto streams = TermStreams(terms);
  streams_span.End();
  const store::PathDictionary& dict = index_->store().paths();

  // ---- Per-twig pattern construction ----
  // A pattern class is an instance-shared (path prefix, group) node. Classes
  // are derived from the plan's pairwise effective join depths.
  struct PatternClass {
    std::string path;
    size_t depth = 0;
    size_t parent = SIZE_MAX;
    std::vector<size_t> children;
    std::vector<size_t> bound_terms;  // terms whose leaf is this class
  };

  struct MatchEntry {
    // For each child class (index into PatternClass::children), the valid
    // child instances under this node.
    std::vector<std::vector<NodeId>> child_nodes;
  };

  struct TwigResult {
    std::vector<size_t> terms;                     // global term indices
    std::vector<std::vector<NodeId>> tuples;       // bound nodes, order = terms
  };
  std::vector<TwigResult> twig_results(plan.twig_count);

  obs::ScopedSpan match_span(options.trace, "twig_match");
  match_span.AddCounter("twigs", plan.twig_count);
  for (size_t twig_id = 0; twig_id < plan.twig_count; ++twig_id) {
    if (guard.Expired()) break;  // remaining twigs yield no tuples
    std::vector<size_t> twig_terms;
    for (size_t t = 0; t < m; ++t) {
      if (plan.twig_of_term[t] == twig_id) twig_terms.push_back(t);
    }
    twig_results[twig_id].terms = twig_terms;

    // Class discovery: start from per-term chains, merge prefixes shared by
    // pairwise effective depths (transitive via merge of class keys).
    // Class key: representative (term, depth) pair under the sharing rule:
    // (i, d) shares with (j, d) iff d <= tree_depth[{i, j}].
    UnionFind class_uf(twig_terms.size() * 64);
    size_t max_depth = 0;
    for (size_t t : twig_terms) max_depth = std::max(max_depth, PathDepth(terms[t].path));
    auto local_slot = [&](size_t local_term, size_t depth) {
      return local_term * (max_depth + 1) + depth;
    };
    for (size_t a = 0; a < twig_terms.size(); ++a) {
      for (size_t b = a + 1; b < twig_terms.size(); ++b) {
        size_t gi = twig_terms[a], gj = twig_terms[b];
        auto it = plan.tree_depth.find({std::min(gi, gj), std::max(gi, gj)});
        if (it == plan.tree_depth.end()) continue;
        for (size_t d = 1; d <= it->second; ++d) {
          class_uf.Union(local_slot(a, d), local_slot(b, d));
        }
      }
    }
    // Materialize classes.
    std::map<size_t, size_t> class_of_root;  // uf root -> class id
    std::vector<PatternClass> classes;
    std::vector<std::vector<size_t>> term_chain(twig_terms.size());
    for (size_t a = 0; a < twig_terms.size(); ++a) {
      size_t depth_a = PathDepth(terms[twig_terms[a]].path);
      for (size_t d = 1; d <= depth_a; ++d) {
        size_t root = class_uf.Find(local_slot(a, d));
        auto [it, inserted] = class_of_root.emplace(root, classes.size());
        if (inserted) {
          PatternClass cls;
          cls.path = PrefixAt(terms[twig_terms[a]].path, d);
          cls.depth = d;
          classes.push_back(std::move(cls));
        }
        term_chain[a].push_back(it->second);
      }
      classes[term_chain[a].back()].bound_terms.push_back(twig_terms[a]);
    }
    // Parent/child relationships.
    for (size_t a = 0; a < twig_terms.size(); ++a) {
      for (size_t d = 1; d < term_chain[a].size(); ++d) {
        size_t child = term_chain[a][d];
        size_t parent = term_chain[a][d - 1];
        if (classes[child].parent == SIZE_MAX) {
          classes[child].parent = parent;
          classes[parent].children.push_back(child);
        }
      }
    }

    // ---- Holistic matching (bottom-up over Dewey streams) ----
    std::vector<std::unordered_map<NodeId, MatchEntry, NodeIdHasher>> valid(
        classes.size());
    // Order classes by decreasing depth.
    std::vector<size_t> class_order(classes.size());
    for (size_t i = 0; i < class_order.size(); ++i) class_order[i] = i;
    std::sort(class_order.begin(), class_order.end(), [&](size_t x, size_t y) {
      return classes[x].depth > classes[y].depth;
    });

    // Per-class term-stream membership (for bound classes).
    auto stream_set = [&](size_t cls) {
      std::unordered_set<NodeId, NodeIdHasher> set;
      bool first = true;
      for (size_t t : classes[cls].bound_terms) {
        std::unordered_set<NodeId, NodeIdHasher> cur;
        for (const text::NodeMatch& nm : streams[t]) cur.insert(nm.node);
        if (first) {
          set = std::move(cur);
          first = false;
        } else {
          std::erase_if(set, [&](const NodeId& n) { return !cur.count(n); });
        }
      }
      return set;
    };

    for (size_t cls : class_order) {
      if (guard.Expired()) break;
      const PatternClass& c = classes[cls];
      std::unordered_map<NodeId, MatchEntry, NodeIdHasher>& mine = valid[cls];
      if (c.children.empty()) {
        // Leaf class: instances from the bound term streams (a leaf class is
        // always bound; unbound leaves cannot arise from term chains).
        for (const NodeId& n : stream_set(cls)) {
          mine.emplace(n, MatchEntry{});
        }
      } else {
        // Internal: candidates were accumulated by children below. Keep only
        // instances covering every child slot; then apply term binding.
        for (auto& [node, entry] : mine) {
          entry.child_nodes.resize(c.children.size());
        }
        std::erase_if(mine, [&](const auto& kv) {
          for (const auto& slot_nodes : kv.second.child_nodes) {
            if (slot_nodes.empty()) return true;
          }
          return false;
        });
        if (!c.bound_terms.empty()) {
          auto allowed = stream_set(cls);
          std::erase_if(mine,
                        [&](const auto& kv) { return !allowed.count(kv.first); });
        }
      }
      // Propagate to parent.
      if (c.parent != SIZE_MAX) {
        const PatternClass& p = classes[c.parent];
        size_t slot_index = SIZE_MAX;
        for (size_t s = 0; s < p.children.size(); ++s) {
          if (p.children[s] == cls) {
            slot_index = s;
            break;
          }
        }
        SEDA_DCHECK_NE(slot_index, SIZE_MAX)
            << "class not registered in its parent's child slots";
        for (const auto& [node, entry] : mine) {
          if (guard.Expired()) break;
          NodeId parent_id{node.doc, node.dewey.Parent()};
          MatchEntry& pe = valid[c.parent][parent_id];
          if (pe.child_nodes.size() < p.children.size()) {
            pe.child_nodes.resize(p.children.size());
          }
          pe.child_nodes[slot_index].push_back(node);
        }
      }
    }

    // ---- Enumeration ----
    size_t root_class = SIZE_MAX;
    for (size_t i = 0; i < classes.size(); ++i) {
      if (classes[i].parent == SIZE_MAX) {
        if (root_class != SIZE_MAX) {
          return Status::Internal("twig has multiple roots");
        }
        root_class = i;
      }
    }
    if (root_class == SIZE_MAX) return Status::Internal("twig has no root");

    std::vector<NodeId> binding(m);
    std::vector<std::vector<NodeId>>& out_tuples = twig_results[twig_id].tuples;

    // Enumeration walks the pattern tree in pre-order; at each class it
    // chooses an instance compatible with the already-chosen parent
    // instance, enforcing distinct instances for sibling classes sharing
    // the same path.
    std::vector<size_t> preorder;
    {
      std::vector<size_t> stack{root_class};
      while (!stack.empty()) {
        size_t cls = stack.back();
        stack.pop_back();
        preorder.push_back(cls);
        for (size_t child : classes[cls].children) stack.push_back(child);
      }
    }

    // Depth-first assignment with explicit recursion.
    std::vector<NodeId> assigned(classes.size());
    std::vector<size_t> preorder_pos(classes.size(), 0);
    for (size_t i = 0; i < preorder.size(); ++i) preorder_pos[preorder[i]] = i;
    auto assign = [&](auto&& self, size_t position) -> void {
      if (guard.Expired()) return;  // unwind; tuples emitted so far stand
      if (position == preorder.size()) {
        std::vector<NodeId> tuple;
        tuple.reserve(twig_terms.size());
        for (size_t t : twig_terms) tuple.push_back(binding[t]);
        out_tuples.push_back(std::move(tuple));
        return;
      }
      size_t cls = preorder[position];
      const PatternClass& c = classes[cls];
      auto try_instance = [&](const NodeId& instance) {
        // Distinctness: sibling classes with the same path must bind
        // different instances (they represent different occurrences). Only
        // siblings assigned earlier in pre-order are bound yet.
        if (c.parent != SIZE_MAX) {
          for (size_t sibling : classes[c.parent].children) {
            if (sibling == cls || preorder_pos[sibling] > position) continue;
            if (classes[sibling].path == c.path &&
                assigned[sibling] == instance) {
              return;
            }
          }
        }
        assigned[cls] = instance;
        for (size_t t : c.bound_terms) binding[t] = instance;
        self(self, position + 1);
      };
      if (c.parent == SIZE_MAX) {
        for (const auto& [node, entry] : valid[cls]) {
          try_instance(node);
        }
      } else {
        // Instances valid under the assigned parent instance.
        const NodeId& parent_instance = assigned[c.parent];
        auto it = valid[c.parent].find(parent_instance);
        if (it == valid[c.parent].end()) return;
        size_t slot_index = SIZE_MAX;
        const PatternClass& p = classes[c.parent];
        for (size_t s = 0; s < p.children.size(); ++s) {
          if (p.children[s] == cls) {
            slot_index = s;
            break;
          }
        }
        SEDA_DCHECK_NE(slot_index, SIZE_MAX)
            << "enumeration class missing from its parent's child slots";
        SEDA_DCHECK_LT(slot_index, it->second.child_nodes.size());
        for (const NodeId& node : it->second.child_nodes[slot_index]) {
          // The child instance must itself be valid (present in valid[cls]).
          if (!valid[cls].count(node)) continue;
          try_instance(node);
        }
      }
    };
    assign(assign, 0);
  }
  match_span.End();

  // ---- Cross-twig joins ---- (the span closes on whichever return path
  // ends the join phase; RAII keeps partial/deadline exits covered.)
  obs::ScopedSpan join_span(options.trace, "cross_twig_join");
  CompleteResult result;
  result.twig_count = plan.twig_count;

  struct Cluster {
    std::vector<size_t> terms;
    std::vector<std::vector<NodeId>> tuples;  // order matches `terms`
  };
  std::vector<Cluster> clusters;
  std::vector<size_t> cluster_of_twig(plan.twig_count);
  for (size_t twig_id = 0; twig_id < plan.twig_count; ++twig_id) {
    Cluster cluster;
    cluster.terms = twig_results[twig_id].terms;
    cluster.tuples = std::move(twig_results[twig_id].tuples);
    clusters.push_back(std::move(cluster));
    cluster_of_twig[twig_id] = twig_id;
  }

  auto term_pos = [](const Cluster& cluster, size_t term) -> size_t {
    for (size_t i = 0; i < cluster.terms.size(); ++i) {
      if (cluster.terms[i] == term) return i;
    }
    return SIZE_MAX;
  };

  for (const ChosenConnection& link : plan.links) {
    if (guard.Expired()) break;  // partial joins handled below
    size_t ca = cluster_of_twig[plan.twig_of_term[link.term_a]];
    size_t cb = cluster_of_twig[plan.twig_of_term[link.term_b]];
    ++result.cross_twig_joins;
    const std::string& a_path = terms[link.term_a].path;
    const std::string& b_path = terms[link.term_b].path;

    if (ca == cb) {
      // Intra-cluster link acts as a filter.
      Cluster& cluster = clusters[ca];
      size_t pa = term_pos(cluster, link.term_a);
      size_t pb = term_pos(cluster, link.term_b);
      std::erase_if(cluster.tuples, [&](const std::vector<NodeId>& tuple) {
        for (const NodeId& s : LinkEndpointInstances(*index_, tuple[pa], a_path,
                                                     link.source_path)) {
          for (const NodeId& t : LinkEndpointInstances(*index_, tuple[pb], b_path,
                                                       link.target_path)) {
            if (EdgeMatches(*graph_, s, t, link.link_label)) return false;
          }
        }
        return true;
      });
      continue;
    }

    // Hash join: index cluster B tuples by their target endpoint instances.
    Cluster& a_cluster = clusters[ca];
    Cluster& b_cluster = clusters[cb];
    size_t pa = term_pos(a_cluster, link.term_a);
    size_t pb = term_pos(b_cluster, link.term_b);
    std::unordered_map<NodeId, std::vector<size_t>, NodeIdHasher> b_by_target;
    for (size_t i = 0; i < b_cluster.tuples.size(); ++i) {
      if (guard.Expired()) break;  // missing probes only shrink the join
      for (const NodeId& t : LinkEndpointInstances(*index_, b_cluster.tuples[i][pb],
                                                   b_path, link.target_path)) {
        b_by_target[t].push_back(i);
      }
    }
    Cluster merged;
    merged.terms = a_cluster.terms;
    merged.terms.insert(merged.terms.end(), b_cluster.terms.begin(),
                        b_cluster.terms.end());
    for (const std::vector<NodeId>& a_tuple : a_cluster.tuples) {
      if (guard.Expired()) break;
      std::set<size_t> joined_b;  // a B tuple joins at most once per A tuple
      for (const NodeId& s : LinkEndpointInstances(*index_, a_tuple[pa], a_path,
                                                   link.source_path)) {
        for (const graph::Edge& edge : graph_->NonTreeEdges(s)) {
          if (!link.link_label.empty() && edge.label != link.link_label) continue;
          NodeId other = edge.from == s ? edge.to : edge.from;
          auto it = b_by_target.find(other);
          if (it == b_by_target.end()) continue;
          for (size_t bi : it->second) joined_b.insert(bi);
        }
      }
      for (size_t bi : joined_b) {
        std::vector<NodeId> joined = a_tuple;
        joined.insert(joined.end(), b_cluster.tuples[bi].begin(),
                      b_cluster.tuples[bi].end());
        merged.tuples.push_back(std::move(joined));
      }
    }
    // Replace cluster ca with merged; empty cb.
    clusters[ca] = std::move(merged);
    clusters[cb].terms.clear();
    clusters[cb].tuples.clear();
    for (size_t& owner : cluster_of_twig) {
      if (owner == cb) owner = ca;
    }
  }

  result.deadline_exceeded = guard.expired();

  // Exactly one non-empty cluster must remain (covering all terms).
  size_t final_cluster = SIZE_MAX;
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].terms.empty()) continue;
    if (final_cluster != SIZE_MAX) {
      if (result.deadline_exceeded) {
        // The deadline cut off the link joins before the clusters merged;
        // there is no well-formed tuple covering all terms, so report the
        // truncation with an empty (but valid) result rather than an error.
        return result;
      }
      return Status::InvalidArgument(
          "query terms form disconnected twigs; add connections");
    }
    final_cluster = i;
  }
  if (final_cluster == SIZE_MAX) return result;

  const Cluster& last = clusters[final_cluster];
  if (last.terms.size() != m) {
    // Deadline expired before every twig was joined in; no full-width tuples.
    SEDA_DCHECK(result.deadline_exceeded)
        << "final cluster misses terms without a deadline cut";
    return result;
  }
  for (const std::vector<NodeId>& tuple : last.tuples) {
    SEDA_DCHECK_EQ(tuple.size(), last.terms.size())
        << "cluster tuple width diverged from its term list";
    ResultTuple out;
    out.nodes.resize(m);
    out.paths.resize(m);
    for (size_t i = 0; i < last.terms.size(); ++i) {
      size_t term = last.terms[i];
      out.nodes[term] = tuple[i];
      out.paths[term] = dict.Find(terms[term].path);
    }
    result.tuples.push_back(std::move(out));
  }
  // Canonical order for comparisons.
  std::sort(result.tuples.begin(), result.tuples.end(),
            [](const ResultTuple& x, const ResultTuple& y) {
              for (size_t i = 0; i < x.nodes.size(); ++i) {
                if (x.nodes[i] < y.nodes[i]) return true;
                if (y.nodes[i] < x.nodes[i]) return false;
              }
              return false;
            });
  return result;
}

Result<CompleteResult> CompleteResultGenerator::ExecuteNaive(
    const std::vector<TermBinding>& terms,
    const std::vector<ChosenConnection>& connections) const {
  auto plan_result = BuildPlan(terms, connections);
  if (!plan_result.ok()) return plan_result.status();
  const Plan& plan = plan_result.value();
  const size_t m = terms.size();
  auto streams = TermStreams(terms);
  const store::PathDictionary& dict = index_->store().paths();

  // Link predicates per pair.
  std::map<std::pair<size_t, size_t>, const ChosenConnection*> link_of_pair;
  for (const ChosenConnection& link : plan.links) {
    link_of_pair[{link.term_a, link.term_b}] = &link;
  }

  CompleteResult result;
  result.twig_count = plan.twig_count;
  result.cross_twig_joins = plan.links.size();

  std::vector<const text::NodeMatch*> chosen(m, nullptr);
  auto satisfied = [&](size_t i, size_t j) {
    // i > j: check the (min, max) pair.
    size_t lo = std::min(i, j), hi = std::max(i, j);
    const NodeId& ni = chosen[i]->node;
    const NodeId& nj = chosen[j]->node;
    auto tree_it = plan.tree_depth.find({lo, hi});
    if (tree_it != plan.tree_depth.end()) {
      if (ni.doc != nj.doc) return false;
      return xml::CommonPrefixLength(ni.dewey, nj.dewey) == tree_it->second;
    }
    auto check_link = [&](const ChosenConnection& link) {
      const NodeId& na = chosen[link.term_a]->node;
      const NodeId& nb = chosen[link.term_b]->node;
      for (const NodeId& s : LinkEndpointInstances(
               *index_, na, terms[link.term_a].path, link.source_path)) {
        for (const NodeId& t : LinkEndpointInstances(
                 *index_, nb, terms[link.term_b].path, link.target_path)) {
          if (EdgeMatches(*graph_, s, t, link.link_label)) return true;
        }
      }
      return false;
    };
    auto link_it = link_of_pair.find({lo, hi});
    if (link_it != link_of_pair.end()) return check_link(*link_it->second);
    // Also honor links given in the (hi, lo) orientation.
    link_it = link_of_pair.find({hi, lo});
    if (link_it != link_of_pair.end()) return check_link(*link_it->second);
    return true;  // cross-twig pair without direct link: unconstrained
  };

  auto backtrack = [&](auto&& self, size_t term) -> void {
    if (term == m) {
      ResultTuple tuple;
      tuple.nodes.resize(m);
      tuple.paths.resize(m);
      for (size_t t = 0; t < m; ++t) {
        tuple.nodes[t] = chosen[t]->node;
        tuple.paths[t] = dict.Find(terms[t].path);
      }
      result.tuples.push_back(std::move(tuple));
      return;
    }
    for (const text::NodeMatch& candidate : streams[term]) {
      chosen[term] = &candidate;
      bool ok = true;
      for (size_t prev = 0; prev < term; ++prev) {
        if (!satisfied(term, prev)) {
          ok = false;
          break;
        }
      }
      if (ok) self(self, term + 1);
    }
    chosen[term] = nullptr;
  };
  backtrack(backtrack, 0);

  std::sort(result.tuples.begin(), result.tuples.end(),
            [](const ResultTuple& x, const ResultTuple& y) {
              for (size_t i = 0; i < x.nodes.size(); ++i) {
                if (x.nodes[i] < y.nodes[i]) return true;
                if (y.nodes[i] < x.nodes[i]) return false;
              }
              return false;
            });
  return result;
}

}  // namespace seda::twig
