#ifndef SEDA_TWIG_TWIG_H_
#define SEDA_TWIG_TWIG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "obs/trace.h"
#include "text/inverted_index.h"

namespace seda::twig {

/// A query term bound to exactly one context path (the state after the user
/// has refined contexts, paper §7: complete results are computed only for
/// the chosen contexts/connections).
struct TermBinding {
  std::string path;                      ///< chosen root-to-leaf context
  const text::TextExpr* search = nullptr;  ///< content predicate; null = any
};

/// A user-chosen connection between two terms, in executable form. Tree
/// connections join the two bound nodes at a specific ancestor instance
/// (their LCA must sit exactly at `join_path`); link connections join across
/// a non-tree edge between ancestors of the bound nodes.
struct ChosenConnection {
  size_t term_a = 0;
  size_t term_b = 0;
  bool is_link = false;
  std::string join_path;    ///< tree: the LCA context (e.g. ".../item")
  std::string source_path;  ///< link: edge source context (ancestor of term_a's path)
  std::string target_path;  ///< link: edge target context (ancestor of term_b's path)
  std::string link_label;   ///< link: relationship label (empty = any)

  /// Converts a dataguide connection into executable form. Supports tree
  /// connections and single-link connections (the shapes SEDA's summaries
  /// produce); multi-link chains return an error.
  static Result<ChosenConnection> FromDataguideConnection(
      size_t term_a, size_t term_b, const dataguide::Connection& connection);
};

/// One row of the complete query result R(q) (paper Fig. 3): per query term a
/// node reference (Dewey) plus the node's full root-to-leaf path.
struct ResultTuple {
  std::vector<store::NodeId> nodes;
  std::vector<store::PathId> paths;
};

/// The complete (non-top-k) result set.
struct CompleteResult {
  std::vector<ResultTuple> tuples;
  /// Number of twigs the connection graph was partitioned into.
  size_t twig_count = 0;
  /// Number of cross-twig join edges executed.
  size_t cross_twig_joins = 0;
  /// True when the generator hit its deadline and stopped early. The tuples
  /// present are well-formed and correct, but the set may be incomplete.
  bool deadline_exceeded = false;
};

/// Execution limits for the complete-result generator.
struct ExecuteOptions {
  /// Wall-clock budget in milliseconds; 0 means unbounded. The generator
  /// checks the clock cooperatively inside the matching, enumeration and
  /// join loops and returns a well-formed partial result on expiry.
  uint64_t deadline_ms = 0;
  /// Per-request trace span (obs/trace.h): when non-null, Execute opens
  /// child spans (term_streams / twig_match / cross_twig_join) under it.
  /// Single-threaded, per-request, never persisted — see
  /// topk::TopKOptions::trace for the contract.
  obs::TraceSpan* trace = nullptr;
};

/// The complete-result generator (paper §7): partitions the connection graph
/// into twigs (query pattern trees over parent/child edges within a
/// document), runs a holistic structural join over Dewey-ordered streams from
/// the full-text index for each twig, and combines twigs with hash joins over
/// the cross-twig (non-tree) edges.
class CompleteResultGenerator {
 public:
  CompleteResultGenerator(const text::InvertedIndex* index,
                          const graph::DataGraph* graph)
      : index_(index), graph_(graph) {}

  /// Executes the twig plan. Pairs of terms without a chosen connection
  /// default to a tree join at their deepest common path prefix when they
  /// live in one twig; terms in different twigs must be bridged by link
  /// connections (directly or transitively), otherwise an error is returned.
  /// A non-zero `options.deadline_ms` bounds the run: on expiry the partial
  /// result comes back with `deadline_exceeded` set instead of an error.
  Result<CompleteResult> Execute(const std::vector<TermBinding>& terms,
                                 const std::vector<ChosenConnection>& connections,
                                 const ExecuteOptions& options = {}) const;

  /// Naive baseline for the A2 ablation: per-document cross products of term
  /// candidates filtered by directly verifying every connection predicate.
  /// Produces the same tuples as Execute (possibly in different order).
  Result<CompleteResult> ExecuteNaive(
      const std::vector<TermBinding>& terms,
      const std::vector<ChosenConnection>& connections) const;

 private:
  std::vector<std::vector<text::NodeMatch>> TermStreams(
      const std::vector<TermBinding>& terms) const;

  const text::InvertedIndex* index_;
  const graph::DataGraph* graph_;
};

}  // namespace seda::twig

#endif  // SEDA_TWIG_TWIG_H_
