#include "dataguide/dataguide.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "persist/reader.h"
#include "persist/writer.h"

namespace seda::dataguide {

Dataguide::Dataguide(std::vector<store::PathId> paths, store::DocId first_member)
    : paths_(std::move(paths)) {
  members_.push_back(first_member);
}

bool Dataguide::Contains(const std::vector<store::PathId>& other) const {
  return std::includes(paths_.begin(), paths_.end(), other.begin(), other.end());
}

size_t Dataguide::CommonPathCount(const std::vector<store::PathId>& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < paths_.size() && j < other.size()) {
    if (paths_[i] < other[j]) {
      ++i;
    } else if (other[j] < paths_[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double Dataguide::Overlap(const std::vector<store::PathId>& other) const {
  if (paths_.empty() || other.empty()) return 0;
  double common = static_cast<double>(CommonPathCount(other));
  return std::min(common / static_cast<double>(paths_.size()),
                  common / static_cast<double>(other.size()));
}

void Dataguide::Merge(const std::vector<store::PathId>& other, store::DocId member) {
  std::vector<store::PathId> merged;
  merged.reserve(paths_.size() + other.size());
  std::set_union(paths_.begin(), paths_.end(), other.begin(), other.end(),
                 std::back_inserter(merged));
  paths_ = std::move(merged);
  members_.push_back(member);
}

bool Connection::HasLink() const {
  for (const Step& step : steps) {
    if (step.move == Move::kLink) return true;
  }
  return false;
}

std::string Connection::Signature() const {
  std::string out = from_path;
  for (const Step& step : steps) {
    switch (step.move) {
      case Move::kUp:
        out += " ^" + step.path;
        break;
      case Move::kDown:
        out += " v" + step.path;
        break;
      case Move::kLink:
        out += " ~" + step.label + ">" + step.path;
        break;
    }
  }
  return out;
}

std::string Connection::ToString() const {
  std::string out = from_path;
  for (const Step& step : steps) {
    switch (step.move) {
      case Move::kUp:
        out += " -> parent " + step.path;
        break;
      case Move::kDown:
        out += " -> child " + step.path;
        break;
      case Move::kLink:
        out += " -> [" + step.label + "] " + step.path;
        break;
    }
  }
  return out;
}

DataguideCollection DataguideCollection::Build(const store::DocumentStore& store,
                                               const Options& options) {
  DataguideCollection collection(&store);
  collection.IngestDocuments(0, options);
  return collection;
}

DataguideCollection DataguideCollection::Extend(const DataguideCollection& base,
                                                const store::DocumentStore& store,
                                                const Options& options) {
  DataguideCollection collection(&store);
  collection.guides_ = base.guides_;
  collection.guide_of_doc_ = base.guide_of_doc_;
  collection.build_stats_ = base.build_stats_;
  collection.IngestDocuments(
      static_cast<store::DocId>(base.build_stats_.documents), options);
  return collection;
}

void DataguideCollection::IngestDocuments(store::DocId first_doc,
                                          const Options& options) {
  const store::DocumentStore& store = *store_;
  BuildStats stats = build_stats_;
  stats.documents = store.DocumentCount();

  // Reused per-document probe buffers (only touched on the parallel path).
  std::vector<char> contains;
  std::vector<double> overlaps;

  for (store::DocId doc = first_doc; doc < store.DocumentCount(); ++doc) {
    const std::vector<store::PathId>& doc_paths = store.DocumentPathSet(doc);
    size_t guide_count = guides_.size();

    // The probe of this document against every existing dataguide (the O(m)
    // inner loop of the paper's O(n*m) build) is read-only, so it can fan out
    // across workers. Selection stays sequential and index-ordered below,
    // which keeps the incremental merge identical to a single-threaded build.
    bool parallel_probe =
        options.pool != nullptr && options.pool->size() >= 1 && guide_count >= 8;
    if (parallel_probe) {
      contains.assign(guide_count, 0);
      overlaps.assign(guide_count, 0.0);
      options.pool->ParallelFor(guide_count, [&](size_t g) {
        contains[g] = guides_[g].Contains(doc_paths) ? 1 : 0;
        overlaps[g] = guides_[g].Overlap(doc_paths);
      });
    }

    // Pass 1: subset / equality short-circuit (paper: "we do not need to do
    // any further processing"). First matching guide wins.
    bool placed = false;
    for (size_t g = 0; g < guide_count; ++g) {
      bool is_contained =
          parallel_probe ? contains[g] != 0 : guides_[g].Contains(doc_paths);
      if (is_contained) {
        guides_[g].AddMember(doc);
        guide_of_doc_[doc] = g;
        ++stats.absorbed;
        placed = true;
        break;
      }
    }
    if (placed) continue;

    // Pass 2: best-overlap merge (strictly-greater, so ties keep the lowest
    // guide index — the same winner the sequential scan picks).
    double best_overlap = 0;
    size_t best_guide = SIZE_MAX;
    for (size_t g = 0; g < guide_count; ++g) {
      double overlap =
          parallel_probe ? overlaps[g] : guides_[g].Overlap(doc_paths);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best_guide = g;
      }
    }
    if (best_guide != SIZE_MAX && best_overlap >= options.overlap_threshold) {
      guides_[best_guide].Merge(doc_paths, doc);
      guide_of_doc_[doc] = best_guide;
      ++stats.merges;
    } else {
      guides_.emplace_back(doc_paths, doc);
      guide_of_doc_[doc] = guides_.size() - 1;
    }
  }

  stats.dataguides = guides_.size();
  stats.reduction_factor =
      stats.dataguides == 0
          ? 0
          : static_cast<double>(stats.documents) / static_cast<double>(stats.dataguides);
  build_stats_ = stats;
}

Status DataguideCollection::SaveTo(persist::ImageWriter* writer) const {
  writer->BeginSection(persist::SectionId::kDataguides);
  writer->PutU64(guides_.size());
  for (const Dataguide& guide : guides_) {
    writer->PutU32Array(guide.paths());
    writer->PutU32Array(guide.members());
  }
  writer->PutU64(build_stats_.documents);
  writer->PutU64(build_stats_.dataguides);
  writer->PutU64(build_stats_.merges);
  writer->PutU64(build_stats_.absorbed);
  writer->PutDouble(build_stats_.reduction_factor);
  writer->PutU64(pending_links_.size());
  for (const PendingLink& link : pending_links_) {
    writer->PutU64(link.guide_a);
    writer->PutU64(link.guide_b);
    writer->PutString(link.path_a);
    writer->PutString(link.path_b);
    writer->PutString(link.label);
  }
  return writer->EndSection();
}

Result<DataguideCollection> DataguideCollection::LoadFrom(
    const persist::MappedImage& image, const store::DocumentStore* store) {
  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor cursor,
                        persist::OpenSection(image, persist::SectionId::kDataguides));
  DataguideCollection collection(store);

  uint64_t guide_count = cursor.GetU64();
  collection.guides_.reserve(cursor.BoundedCount(guide_count, 8));
  for (uint64_t g = 0; g < guide_count && !cursor.failed(); ++g) {
    std::vector<store::PathId> paths = cursor.GetU32Array();
    std::vector<store::DocId> members = cursor.GetU32Array();
    for (store::DocId doc : members) {
      // Every document belongs to exactly one guide, so membership doubles
      // as the doc -> guide map and needs no separate serialization.
      collection.guide_of_doc_[doc] = static_cast<size_t>(g);
    }
    collection.guides_.push_back(
        Dataguide::FromParts(std::move(paths), std::move(members)));
  }
  collection.build_stats_.documents = cursor.GetU64();
  collection.build_stats_.dataguides = cursor.GetU64();
  collection.build_stats_.merges = cursor.GetU64();
  collection.build_stats_.absorbed = cursor.GetU64();
  collection.build_stats_.reduction_factor = cursor.GetDouble();
  uint64_t link_count = cursor.GetU64();
  collection.pending_links_.reserve(cursor.BoundedCount(link_count, 28));
  for (uint64_t l = 0; l < link_count && !cursor.failed(); ++l) {
    PendingLink link;
    link.guide_a = static_cast<size_t>(cursor.GetU64());
    link.guide_b = static_cast<size_t>(cursor.GetU64());
    link.path_a = cursor.GetString();
    link.path_b = cursor.GetString();
    link.label = cursor.GetString();
    collection.pending_links_.push_back(std::move(link));
  }
  collection.link_count_ = collection.pending_links_.size();
  SEDA_RETURN_IF_ERROR(cursor.status());
  return collection;
}

void DataguideCollection::AddLinksFromGraph(const graph::DataGraph& graph) {
  // Map every non-tree edge to path level, deduplicating per
  // (guide_a, path_a, guide_b, path_b, label).
  std::set<std::tuple<size_t, std::string, size_t, std::string, std::string>> seen;
  const store::DocumentStore& store = *store_;
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    for (const graph::Edge& edge : graph.NonTreeEdges(id)) {
      if (!(edge.from == id)) continue;  // visit each edge once, at its source
      xml::Node* from_node = store.GetNode(edge.from);
      xml::Node* to_node = store.GetNode(edge.to);
      if (from_node == nullptr || to_node == nullptr) continue;
      size_t guide_a = GuideOfDoc(edge.from.doc);
      size_t guide_b = GuideOfDoc(edge.to.doc);
      std::string path_a = from_node->ContextPath();
      std::string path_b = to_node->ContextPath();
      auto key = std::make_tuple(guide_a, path_a, guide_b, path_b, edge.label);
      if (!seen.insert(key).second) continue;
      pending_links_.push_back({guide_a, guide_b, path_a, path_b, edge.label});
      ++link_count_;
    }
  });
  summary_built_ = false;  // rebuild with links
  connection_cache_.clear();
}

size_t DataguideCollection::InternSummaryNode(size_t guide, const std::string& path) {
  auto key = std::make_pair(guide, path);
  auto it = summary_index_.find(key);
  if (it != summary_index_.end()) return it->second;
  size_t id = summary_nodes_.size();
  summary_nodes_.push_back({guide, path});
  summary_adj_.emplace_back();
  summary_index_.emplace(std::move(key), id);
  nodes_by_path_[path].push_back(id);
  return id;
}

void DataguideCollection::EnsureSummaryGraph() const {
  if (summary_built_) return;
  auto* self = const_cast<DataguideCollection*>(this);
  self->summary_nodes_.clear();
  self->summary_adj_.clear();
  self->summary_index_.clear();
  self->nodes_by_path_.clear();

  const store::PathDictionary& dict = store_->paths();
  for (size_t g = 0; g < guides_.size(); ++g) {
    for (store::PathId pid : guides_[g].paths()) {
      const std::string& full = dict.PathString(pid);
      // Intern all prefixes and chain them with parent/child edges.
      std::vector<std::string> labels = SplitSkipEmpty(full, '/');
      std::string prefix;
      size_t prev = SIZE_MAX;
      for (const std::string& label : labels) {
        prefix += "/" + label;
        size_t node = self->InternSummaryNode(g, prefix);
        if (prev != SIZE_MAX) {
          // Avoid duplicate edges: adjacency may already link prev<->node.
          bool exists = false;
          for (const SummaryEdge& e : summary_adj_[prev]) {
            if (e.to == node && e.move == Connection::Move::kDown) {
              exists = true;
              break;
            }
          }
          if (!exists) {
            self->summary_adj_[prev].push_back({node, Connection::Move::kDown, ""});
            self->summary_adj_[node].push_back({prev, Connection::Move::kUp, ""});
          }
        }
        prev = node;
      }
    }
  }
  // Apply link edges.
  for (const PendingLink& link : pending_links_) {
    size_t a = self->InternSummaryNode(link.guide_a, link.path_a);
    size_t b = self->InternSummaryNode(link.guide_b, link.path_b);
    self->summary_adj_[a].push_back({b, Connection::Move::kLink, link.label});
    self->summary_adj_[b].push_back({a, Connection::Move::kLink, link.label});
  }
  summary_built_ = true;
}

std::vector<Connection> DataguideCollection::FindConnections(
    const std::string& from_path, const std::string& to_path, size_t max_len,
    size_t max_count, size_t max_steps) const {
  // The mutex guards the lazily-built mutable state — the summary graph, the
  // cache and its counters — because snapshots are shared by concurrent
  // queries, and this is the only read entry point that mutates. The search
  // itself runs outside the lock: once built, the summary graph is immutable
  // (until writer-side AddLinksFromGraph, which happens pre-publication), so
  // two threads missing on the same pair at worst compute the same answer
  // twice, instead of every query's connection summary serializing.
  auto key = std::make_pair(from_path, to_path);
  {
    std::lock_guard<std::mutex> lock(*summary_mu_);
    EnsureSummaryGraph();
    if (cache_enabled_) {
      auto it = connection_cache_.find(key);
      if (it != connection_cache_.end()) {
        ++cache_hits_;
        return it->second;
      }
    }
    ++cache_misses_;
  }
  auto connections =
      ComputeConnections(from_path, to_path, max_len, max_count, max_steps);
  if (cache_enabled_) {
    std::lock_guard<std::mutex> lock(*summary_mu_);
    connection_cache_.emplace(std::move(key), connections);
  }
  return connections;
}

std::vector<Connection> DataguideCollection::ComputeConnections(
    const std::string& from_path, const std::string& to_path, size_t max_len,
    size_t max_count, size_t max_steps) const {
  // Precondition: EnsureSummaryGraph() already ran (FindConnections does it
  // under the lock); from here the summary graph is read-only.
  std::vector<Connection> out;
  std::set<std::string> signatures;

  auto from_it = nodes_by_path_.find(from_path);
  if (from_it == nodes_by_path_.end()) return out;
  auto to_it = nodes_by_path_.find(to_path);
  if (to_it == nodes_by_path_.end()) return out;
  std::set<size_t> targets(to_it->second.begin(), to_it->second.end());

  // Bounded DFS, shortest paths first via iterative deepening. Nodes MAY be
  // revisited: the summary graph collapses sibling instances onto one node,
  // so the paper's cross-item connection (trade_country ^item
  // ^import_partners v item v percentage, Figure 1) necessarily walks back
  // down an edge it came up. Only degenerate immediate reversals are banned:
  // stepping down to a child and straight back up (the same instance), or
  // bouncing back across the same link edge.
  // Total DFS work budget across all depth iterations; shortest connections
  // surface first, so an exhausted budget degrades to "fewer long
  // connections", never to a missing short one.
  size_t steps = 0;
  for (size_t depth_limit = 1; depth_limit <= max_len && out.size() < max_count;
       ++depth_limit) {
    for (size_t start : from_it->second) {
      std::vector<Connection::Step> step_stack;

      // Explicit DFS with per-frame edge cursor; prev = node we came from.
      struct Frame {
        size_t node;
        size_t edge_index;
        size_t prev;                 // SIZE_MAX at the start node
        Connection::Move prev_move;  // move that entered `node`
      };
      std::vector<Frame> frames{{start, 0, SIZE_MAX, Connection::Move::kUp}};

      while (!frames.empty()) {
        if (max_steps > 0 && ++steps > max_steps) return out;
        Frame& frame = frames.back();
        if (step_stack.size() == depth_limit ||
            frame.edge_index >= summary_adj_[frame.node].size()) {
          frames.pop_back();
          if (!step_stack.empty()) step_stack.pop_back();
          continue;
        }
        const SummaryEdge& edge = summary_adj_[frame.node][frame.edge_index++];
        if (frame.prev != SIZE_MAX && edge.to == frame.prev) {
          // Immediate reversal checks (same instance, no information).
          if (frame.prev_move == Connection::Move::kDown &&
              edge.move == Connection::Move::kUp) {
            continue;
          }
          if (frame.prev_move == Connection::Move::kLink &&
              edge.move == Connection::Move::kLink) {
            continue;
          }
        }
        Connection::Step step;
        step.move = edge.move;
        step.path = summary_nodes_[edge.to].path;
        step.label = edge.label;
        step_stack.push_back(step);
        if (targets.count(edge.to) && step_stack.size() == depth_limit) {
          Connection conn;
          conn.from_path = from_path;
          conn.to_path = to_path;
          conn.steps = step_stack;
          if (signatures.insert(conn.Signature()).second) {
            out.push_back(std::move(conn));
            if (out.size() >= max_count) return out;
          }
          step_stack.pop_back();
          continue;
        }
        frames.push_back({edge.to, 0, frame.node, edge.move});
      }
    }
  }
  return out;
}

}  // namespace seda::dataguide
