#ifndef SEDA_DATAGUIDE_DATAGUIDE_H_
#define SEDA_DATAGUIDE_DATAGUIDE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/data_graph.h"
#include "store/document_store.h"

namespace seda {
class ThreadPool;
}

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::dataguide {

/// A dataguide: the set of distinct root-to-leaf paths of one or more
/// documents (paper §6.1 represents a dataguide exactly as "a list of full
/// root-to-leaf paths"). Paths are interned PathIds, kept sorted.
class Dataguide {
 public:
  Dataguide() = default;
  Dataguide(std::vector<store::PathId> paths, store::DocId first_member);

  const std::vector<store::PathId>& paths() const { return paths_; }
  const std::vector<store::DocId>& members() const { return members_; }
  size_t PathCount() const { return paths_.size(); }

  /// True iff every path of `other` is contained in this dataguide.
  bool Contains(const std::vector<store::PathId>& other) const;

  /// |common_paths| between this dataguide and `other`.
  size_t CommonPathCount(const std::vector<store::PathId>& other) const;

  /// The paper's similarity metric:
  ///   overlap(dg1, dg2) = min(|common|/|paths(dg1)|, |common|/|paths(dg2)|)
  double Overlap(const std::vector<store::PathId>& other) const;

  /// Unions `other`'s paths into this dataguide and records the member doc.
  void Merge(const std::vector<store::PathId>& other, store::DocId member);

  void AddMember(store::DocId doc) { members_.push_back(doc); }

  /// Persistence hook: reassembles a dataguide from its serialized parts.
  static Dataguide FromParts(std::vector<store::PathId> paths,
                             std::vector<store::DocId> members) {
    Dataguide guide;
    guide.paths_ = std::move(paths);
    guide.members_ = std::move(members);
    return guide;
  }

 private:
  std::vector<store::PathId> paths_;    // sorted, distinct
  std::vector<store::DocId> members_;
};

/// A path-level (schema-level) connection between two contexts, discovered on
/// the dataguide summary graph. Steps walk from `from_path` to `to_path`
/// through parent/child moves inside a dataguide tree and through link edges
/// (IDREF / XLink / value-based) between dataguides.
struct Connection {
  enum class Move { kUp, kDown, kLink };

  struct Step {
    Move move = Move::kUp;
    std::string path;   ///< the context arrived at after the move
    std::string label;  ///< relationship label for kLink moves
  };

  std::string from_path;
  std::string to_path;
  std::vector<Step> steps;

  size_t Length() const { return steps.size(); }
  bool HasLink() const;
  /// Canonical signature used for deduplication and display, e.g.
  /// "/a/b/c ^/a/b v/a/b/d" or with "~label>/x/y" for link moves.
  std::string Signature() const;
  /// Human-readable rendering.
  std::string ToString() const;
};

/// Statistics from building a dataguide collection (Table 1 rows).
struct BuildStats {
  size_t documents = 0;
  size_t dataguides = 0;
  size_t merges = 0;
  size_t absorbed = 0;  ///< documents whose guide was a subset/equal match
  double reduction_factor = 0;  ///< documents / dataguides
};

/// The dataguide summary DG of a collection (paper §6.1): one dataguide per
/// "schema cluster" of documents, built incrementally with the overlap
/// threshold merge rule, plus link edges corresponding to the non-tree edges
/// of the data graph. Connection discovery runs BFS/DFS over this summary
/// instead of the full data graph, with a connection cache (§6.1 "we cache
/// the connections we discover").
class DataguideCollection {
 public:
  struct Options {
    /// Merge two dataguides when overlap >= threshold. The paper's Table 1
    /// uses 0.4. Threshold > 1 disables merging entirely (one dataguide per
    /// distinct document schema).
    double overlap_threshold = 0.4;
    /// When set, each document's probe against existing dataguides (the inner
    /// O(m) loop) fans out over the pool. The incremental merge itself stays
    /// sequential in document order, so the result is independent of the
    /// worker count.
    ThreadPool* pool = nullptr;
  };

  /// Builds the collection over every document in `store`. Cost O(n·m) as in
  /// the paper: each document probes every existing dataguide.
  static DataguideCollection Build(const store::DocumentStore& store,
                                   const Options& options);

  /// Incremental-commit constructor: continues `base`'s sequential
  /// overlap-threshold merge over the documents `base` has not seen
  /// (`store`'s document prefix must be identical to the store `base` was
  /// built over). Because the paper's build is a strictly document-ordered
  /// incremental algorithm, extending an epoch-N collection over the new
  /// documents makes exactly the merge decisions a from-scratch build over
  /// the whole store would — only the new documents pay the O(m) probe.
  /// Link edges and the lazy summary graph are *not* carried over; call
  /// AddLinksFromGraph with the new epoch's data graph as usual.
  static DataguideCollection Extend(const DataguideCollection& base,
                                    const store::DocumentStore& store,
                                    const Options& options);

  const std::vector<Dataguide>& guides() const { return guides_; }
  size_t size() const { return guides_.size(); }
  const BuildStats& build_stats() const { return build_stats_; }

  /// Index of the dataguide summarizing document `doc`.
  size_t GuideOfDoc(store::DocId doc) const { return guide_of_doc_.at(doc); }

  /// Non-throwing GuideOfDoc for callers probing consistency (the audit
  /// layer): nullopt when no guide claims the document.
  std::optional<size_t> FindGuideOfDoc(store::DocId doc) const {
    auto it = guide_of_doc_.find(doc);
    if (it == guide_of_doc_.end()) return std::nullopt;
    return it->second;
  }

  /// Materializes link edges between dataguides from the data graph's
  /// non-tree edges (mapped to path level). Call once after Build.
  void AddLinksFromGraph(const graph::DataGraph& graph);

  /// Finds up to `max_count` distinct simple connections between two
  /// contexts, each at most `max_len` moves, ordered by length (shortest
  /// first, the paper's preference). Results are cached per (from, to) pair.
  /// `max_steps` (0 = unlimited) bounds the total DFS edge expansions: the
  /// summary graph allows revisits (see ComputeConnections), so on schema
  /// clusters with wide fan-out an exhaustive depth-6 enumeration is
  /// exponential — the budget keeps the (cached, cold) probe in the tens of
  /// milliseconds and iterative deepening guarantees the shortest
  /// connections are found before it runs out.
  std::vector<Connection> FindConnections(const std::string& from_path,
                                          const std::string& to_path,
                                          size_t max_len = 6,
                                          size_t max_count = 16,
                                          size_t max_steps = 1000000) const;

  /// Cache behaviour control + counters (ablation A3).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  /// Total number of link edges added from the data graph.
  size_t LinkCount() const { return link_count_; }

  /// Persistence hooks (src/persist/): writes guides, build statistics and
  /// the path-level link edges / reconstructs the collection over `store`.
  /// The lazy summary graph and the connection cache start cold (they are
  /// derived state); Extend() continues a loaded collection exactly like an
  /// in-memory one.
  Status SaveTo(persist::ImageWriter* writer) const;
  static Result<DataguideCollection> LoadFrom(const persist::MappedImage& image,
                                              const store::DocumentStore* store);

 private:
  explicit DataguideCollection(const store::DocumentStore* store) : store_(store) {}

  /// The shared tail of Build and Extend: runs the sequential
  /// overlap-threshold merge over documents [first_doc, DocumentCount) and
  /// refreshes the build statistics.
  void IngestDocuments(store::DocId first_doc, const Options& options);

  /// Summary-graph node: a path prefix inside one dataguide.
  struct SummaryNode {
    size_t guide = 0;
    std::string path;
  };
  struct SummaryEdge {
    size_t to = 0;
    Connection::Move move = Connection::Move::kUp;
    std::string label;
  };

  size_t InternSummaryNode(size_t guide, const std::string& path);
  void EnsureSummaryGraph() const;
  std::vector<Connection> ComputeConnections(const std::string& from_path,
                                             const std::string& to_path,
                                             size_t max_len, size_t max_count,
                                             size_t max_steps) const;

  const store::DocumentStore* store_;
  std::vector<Dataguide> guides_;
  std::unordered_map<store::DocId, size_t> guide_of_doc_;
  BuildStats build_stats_;

  // Summary graph (built lazily).
  mutable std::vector<SummaryNode> summary_nodes_;
  mutable std::map<std::pair<size_t, std::string>, size_t> summary_index_;
  mutable std::vector<std::vector<SummaryEdge>> summary_adj_;
  mutable std::unordered_map<std::string, std::vector<size_t>> nodes_by_path_;
  mutable bool summary_built_ = false;
  // Pending link edges (path level), applied when the summary graph builds.
  struct PendingLink {
    size_t guide_a, guide_b;
    std::string path_a, path_b, label;
  };
  std::vector<PendingLink> pending_links_;
  size_t link_count_ = 0;

  // Connection cache.
  mutable bool cache_enabled_ = true;
  mutable std::map<std::pair<std::string, std::string>, std::vector<Connection>>
      connection_cache_;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;

  /// Serializes the lazy summary-graph build and the connection cache so
  /// concurrent queries against one published snapshot can share the
  /// collection. Behind a unique_ptr to keep the collection movable (Build
  /// and Extend return by value).
  mutable std::unique_ptr<std::mutex> summary_mu_ = std::make_unique<std::mutex>();
};

}  // namespace seda::dataguide

#endif  // SEDA_DATAGUIDE_DATAGUIDE_H_
