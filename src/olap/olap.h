#ifndef SEDA_OLAP_OLAP_H_
#define SEDA_OLAP_OLAP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/cube_builder.h"

namespace seda::olap {

/// Aggregation functions supported by the cube.
enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// Parses a numeric measure value; tolerates suffixes the Factbook uses
/// ("12.31T", "924.4B", "15%") by scaling T/B/M and stripping '%'.
std::optional<double> ParseMeasure(const std::string& text);

/// One aggregated cell: the grouped dimension values and the aggregate.
struct Cell {
  std::vector<std::string> group;  ///< one value per grouped dimension
  double value = 0;
  uint64_t count = 0;
};

/// A computed cuboid: the result of aggregating a fact table's measure over
/// a subset of its dimensions.
struct Cuboid {
  std::vector<std::string> dimensions;  ///< grouped dimension column names
  AggFn fn = AggFn::kSum;
  std::string measure;
  std::vector<Cell> cells;

  /// Grand total over all cells (for kSum/kCount this equals aggregating
  /// with zero dimensions).
  double Total() const;

  std::string ToString() const;
};

/// An OLAP cube over one fact table (paper §7 hands the star schema to an
/// "off-the-shelf OLAP tool"; this module closes that loop). Dimensions are
/// the fact table's key columns; measures are the remaining columns.
class Cube {
 public:
  /// Builds a cube from a fact table produced by the CubeBuilder.
  static Result<Cube> FromFactTable(const cube::Table& fact_table);

  const std::vector<std::string>& dimensions() const { return dimensions_; }
  const std::vector<std::string>& measures() const { return measures_; }
  size_t RowCount() const { return rows_.size(); }

  /// Group-by aggregation over the given dimension subset.
  Result<Cuboid> Aggregate(const std::vector<std::string>& group_dims, AggFn fn,
                           const std::string& measure) const;

  /// Rollup: the sequence of cuboids obtained by dropping the last grouping
  /// dimension one at a time (classic ROLLUP), ending with the grand total.
  Result<std::vector<Cuboid>> Rollup(const std::vector<std::string>& dims, AggFn fn,
                                     const std::string& measure) const;

  /// Slice: fixes one dimension to a value and returns the sub-cube.
  Result<Cube> Slice(const std::string& dimension, const std::string& value) const;

  /// Dice: keeps rows whose dimension value is in the allowed set.
  Result<Cube> Dice(const std::string& dimension,
                    const std::vector<std::string>& values) const;

  /// Renders a 2-D pivot grid: rows = dim_row values, columns = dim_col
  /// values, cells = aggregate of the measure.
  Result<std::string> Pivot(const std::string& dim_row, const std::string& dim_col,
                            AggFn fn, const std::string& measure) const;

 private:
  Result<size_t> DimIndex(const std::string& name) const;
  Result<size_t> MeasureIndex(const std::string& name) const;

  std::vector<std::string> dimensions_;
  std::vector<std::string> measures_;
  /// Rows: dimension values then measure values (as parsed doubles; NaN when
  /// missing).
  std::vector<std::vector<std::string>> dim_rows_;
  std::vector<std::vector<std::optional<double>>> measure_rows_;
  std::vector<std::vector<std::string>> rows_;  // raw rows for slicing
};

}  // namespace seda::olap

#endif  // SEDA_OLAP_OLAP_H_
