#include "olap/olap.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/strings.h"

namespace seda::olap {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

std::optional<double> ParseMeasure(const std::string& text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return std::nullopt;
  double scale = 1.0;
  if (s.back() == '%') {
    s.remove_suffix(1);
  } else if (s.back() == 'T') {
    scale = 1e12;
    s.remove_suffix(1);
  } else if (s.back() == 'B') {
    scale = 1e9;
    s.remove_suffix(1);
  } else if (s.back() == 'M') {
    scale = 1e6;
    s.remove_suffix(1);
  }
  std::string buffer(s);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || end == nullptr) return std::nullopt;
  while (*end == ' ') ++end;
  if (*end != '\0') return std::nullopt;
  return value * scale;
}

double Cuboid::Total() const {
  double total = 0;
  for (const Cell& cell : cells) total += cell.value;
  return total;
}

std::string Cuboid::ToString() const {
  std::string out = std::string(AggFnName(fn)) + "(" + measure + ") by [" +
                    Join(dimensions, ", ") + "]:\n";
  for (const Cell& cell : cells) {
    out += "  (" + Join(cell.group, ", ") + ") = " + FormatDouble(cell.value, 3) +
           "  [n=" + std::to_string(cell.count) + "]\n";
  }
  return out;
}

Result<Cube> Cube::FromFactTable(const cube::Table& fact_table) {
  Cube cube;
  if (fact_table.columns.empty()) {
    return Status::InvalidArgument("fact table has no columns");
  }
  std::set<size_t> key_set(fact_table.key_columns.begin(),
                           fact_table.key_columns.end());
  std::vector<size_t> dim_idx, measure_idx;
  for (size_t c = 0; c < fact_table.columns.size(); ++c) {
    if (key_set.count(c)) {
      cube.dimensions_.push_back(fact_table.columns[c]);
      dim_idx.push_back(c);
    } else {
      cube.measures_.push_back(fact_table.columns[c]);
      measure_idx.push_back(c);
    }
  }
  if (cube.measures_.empty()) {
    return Status::InvalidArgument("fact table '" + fact_table.name +
                                   "' has no measure column");
  }
  for (const auto& row : fact_table.rows) {
    std::vector<std::string> dims;
    for (size_t c : dim_idx) dims.push_back(c < row.size() ? row[c] : "");
    std::vector<std::optional<double>> measures;
    for (size_t c : measure_idx) {
      measures.push_back(c < row.size() ? ParseMeasure(row[c]) : std::nullopt);
    }
    cube.dim_rows_.push_back(std::move(dims));
    cube.measure_rows_.push_back(std::move(measures));
    cube.rows_.push_back(row);
  }
  return cube;
}

Result<size_t> Cube::DimIndex(const std::string& name) const {
  for (size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i] == name) return i;
  }
  return Status::NotFound("unknown dimension '" + name + "'");
}

Result<size_t> Cube::MeasureIndex(const std::string& name) const {
  for (size_t i = 0; i < measures_.size(); ++i) {
    if (measures_[i] == name) return i;
  }
  return Status::NotFound("unknown measure '" + name + "'");
}

Result<Cuboid> Cube::Aggregate(const std::vector<std::string>& group_dims, AggFn fn,
                               const std::string& measure) const {
  SEDA_ASSIGN_OR_RETURN(size_t m_idx, MeasureIndex(measure));
  std::vector<size_t> g_idx;
  for (const std::string& dim : group_dims) {
    SEDA_ASSIGN_OR_RETURN(size_t d, DimIndex(dim));
    g_idx.push_back(d);
  }
  struct Acc {
    double sum = 0;
    double min = 0;
    double max = 0;
    uint64_t count = 0;
  };
  std::map<std::vector<std::string>, Acc> groups;
  for (size_t r = 0; r < dim_rows_.size(); ++r) {
    const std::optional<double>& value = measure_rows_[r][m_idx];
    if (!value.has_value()) continue;
    std::vector<std::string> key;
    key.reserve(g_idx.size());
    for (size_t d : g_idx) key.push_back(dim_rows_[r][d]);
    Acc& acc = groups[key];
    if (acc.count == 0) {
      acc.min = acc.max = *value;
    } else {
      acc.min = std::min(acc.min, *value);
      acc.max = std::max(acc.max, *value);
    }
    acc.sum += *value;
    acc.count += 1;
  }
  Cuboid cuboid;
  cuboid.dimensions = group_dims;
  cuboid.fn = fn;
  cuboid.measure = measure;
  for (const auto& [key, acc] : groups) {
    Cell cell;
    cell.group = key;
    cell.count = acc.count;
    switch (fn) {
      case AggFn::kSum:
        cell.value = acc.sum;
        break;
      case AggFn::kCount:
        cell.value = static_cast<double>(acc.count);
        break;
      case AggFn::kAvg:
        cell.value = acc.count == 0 ? 0 : acc.sum / static_cast<double>(acc.count);
        break;
      case AggFn::kMin:
        cell.value = acc.min;
        break;
      case AggFn::kMax:
        cell.value = acc.max;
        break;
    }
    cuboid.cells.push_back(std::move(cell));
  }
  return cuboid;
}

Result<std::vector<Cuboid>> Cube::Rollup(const std::vector<std::string>& dims,
                                         AggFn fn, const std::string& measure) const {
  std::vector<Cuboid> out;
  for (size_t keep = dims.size(); keep > 0; --keep) {
    std::vector<std::string> group(dims.begin(), dims.begin() + keep);
    SEDA_ASSIGN_OR_RETURN(Cuboid cuboid, Aggregate(group, fn, measure));
    out.push_back(std::move(cuboid));
  }
  SEDA_ASSIGN_OR_RETURN(Cuboid grand, Aggregate({}, fn, measure));
  out.push_back(std::move(grand));
  return out;
}

Result<Cube> Cube::Slice(const std::string& dimension, const std::string& value) const {
  return Dice(dimension, {value});
}

Result<Cube> Cube::Dice(const std::string& dimension,
                        const std::vector<std::string>& values) const {
  SEDA_ASSIGN_OR_RETURN(size_t d, DimIndex(dimension));
  std::set<std::string> allowed(values.begin(), values.end());
  Cube out;
  out.dimensions_ = dimensions_;
  out.measures_ = measures_;
  for (size_t r = 0; r < dim_rows_.size(); ++r) {
    if (!allowed.count(dim_rows_[r][d])) continue;
    out.dim_rows_.push_back(dim_rows_[r]);
    out.measure_rows_.push_back(measure_rows_[r]);
    out.rows_.push_back(rows_[r]);
  }
  return out;
}

Result<std::string> Cube::Pivot(const std::string& dim_row, const std::string& dim_col,
                                AggFn fn, const std::string& measure) const {
  SEDA_ASSIGN_OR_RETURN(Cuboid cuboid, Aggregate({dim_row, dim_col}, fn, measure));
  std::set<std::string> rows, cols;
  std::map<std::pair<std::string, std::string>, double> cells;
  for (const Cell& cell : cuboid.cells) {
    rows.insert(cell.group[0]);
    cols.insert(cell.group[1]);
    cells[{cell.group[0], cell.group[1]}] = cell.value;
  }
  size_t first_width = dim_row.size();
  for (const std::string& r : rows) first_width = std::max(first_width, r.size());
  std::string out = dim_row + std::string(first_width - dim_row.size(), ' ');
  for (const std::string& c : cols) out += " | " + c;
  out += "\n";
  for (const std::string& r : rows) {
    out += r + std::string(first_width - r.size(), ' ');
    for (const std::string& c : cols) {
      auto it = cells.find({r, c});
      std::string value = it == cells.end() ? "-" : FormatDouble(it->second, 2);
      out += " | " + value + std::string(c.size() > value.size()
                                             ? c.size() - value.size()
                                             : 0, ' ');
    }
    out += "\n";
  }
  return out;
}

}  // namespace seda::olap
