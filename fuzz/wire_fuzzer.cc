// Fuzz target for the JSON wire layer (src/api/wire.*) — the service's
// untrusted network-input surface. Any input must come back as a clean
// Status; crashes, sanitizer reports and hangs are bugs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "api/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  // The generic JSON parser first, then the request decoders the service's
  // Handle() dispatch feeds with attacker-controlled payloads.
  (void)seda::api::Json::Parse(input);
  (void)seda::api::DecodeCreateSessionRequest(input);
  (void)seda::api::DecodeCloseSessionRequest(input);
  (void)seda::api::DecodeSearchRequest(input);
  (void)seda::api::DecodeRefineRequest(input);
  (void)seda::api::DecodeCompleteRequest(input);
  (void)seda::api::DecodeCubeRequest(input);
  // Response decoders run on the client side of the wire — same trust level.
  (void)seda::api::DecodeSearchResponseDto(input);
  (void)seda::api::DecodeCompleteResponseDto(input);
  (void)seda::api::DecodeCubeResponseDto(input);
  return 0;
}
