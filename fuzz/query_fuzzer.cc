// Fuzz target for the query-language parser (src/query/) — the third
// untrusted input surface: user-typed query text. Every input must parse
// into a Query or fail with InvalidArgument; no crashes or hangs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "query/query.h"
#include "text/text_expr.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  (void)seda::query::ParseQuery(input);
  // The per-term content-predicate grammar is reachable on its own through
  // the session API, so fuzz it directly too.
  (void)seda::text::ParseTextExpr(input);
  return 0;
}
