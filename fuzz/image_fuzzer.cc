// Fuzz target for the persisted-image surface: header/section-table
// validation (MappedImage), section decoding (SectionCursor via the
// per-layer Load hooks) and full snapshot reconstruction. A snapshot image
// can come from an untrusted filesystem, so a hostile byte stream must
// always surface as a Status — never UB, OOM or a crash.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "persist/reader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::vector<uint8_t> bytes(data, data + size);
  auto image = seda::persist::MappedImage::FromBuffer(std::move(bytes), "fuzz");
  if (!image.ok()) return 0;

  // Walk every declared section with a raw cursor (exercises the sticky
  // bounds checks even for sections Load() would skip).
  for (const seda::persist::SectionEntry& entry : image.value()->sections()) {
    auto cursor = seda::persist::OpenSection(
        *image.value(), static_cast<seda::persist::SectionId>(entry.id));
    if (!cursor.ok()) continue;
    while (cursor.value().remaining() > 0 && !cursor.value().failed()) {
      (void)cursor.value().GetString();
      (void)cursor.value().GetU32Array();
    }
  }

  // Full reconstruction: store, graph, index and dataguide decode hooks.
  (void)seda::core::Snapshot::Load(image.value(), nullptr, nullptr);
  return 0;
}
