// Fuzz target for the TCP frame decoder (src/net/frame.*) — the transport's
// untrusted byte-stream surface, upstream of the JSON wire fuzzing. The
// input is split into two Feed() chunks (split point taken from the first
// byte) so mid-header and mid-payload boundaries get exercised, then drained
// through Next() like a connection would. Any byte stream must end in
// kNeedMore or a sticky kError; crashes, sanitizer reports, unbounded
// buffering and hangs are bugs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // A small cap forces the oversized-length path with tiny inputs.
  seda::net::FrameDecoder decoder(/*max_payload_bytes=*/1 << 16);
  const char* bytes = reinterpret_cast<const char*>(data);
  size_t split = size > 1 ? data[0] % size : 0;
  decoder.Feed(bytes, split);
  for (;;) {
    auto result = decoder.Next();
    if (result.event != seda::net::FrameDecoder::Event::kFrame) break;
  }
  decoder.Feed(bytes + split, size - split);
  for (;;) {
    auto result = decoder.Next();
    if (result.event == seda::net::FrameDecoder::Event::kFrame) {
      // Round-trip every extracted payload: re-encoding and re-decoding one
      // frame must reproduce it exactly.
      seda::net::FrameDecoder verify;
      const std::string frame = seda::net::EncodeFrame(result.payload);
      verify.Feed(frame.data(), frame.size());
      auto verified = verify.Next();
      if (verified.event != seda::net::FrameDecoder::Event::kFrame ||
          verified.payload != result.payload) {
        __builtin_trap();
      }
      continue;
    }
    break;
  }
  return 0;
}
