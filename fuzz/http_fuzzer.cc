// Fuzz target for the HTTP request-head parser (src/net/http.h) — the
// metrics listener's untrusted-input surface (the fifth one, after
// wire/image/query/frame). Scrapers are friendly, but the port is a plain
// TCP listener: anything can connect and send anything. The parser must
// classify every byte string as kOk/kIncomplete/kBad without crashes,
// sanitizer reports, or unbounded work, and its invariants must hold:
// kOk implies a parsed request line within the caps, any prefix of a
// kIncomplete head is itself incomplete or bad, and head_bytes never
// exceeds the input.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/http.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  seda::net::HttpRequest request;
  const seda::net::HttpParse parse =
      seda::net::ParseHttpRequest(input, &request);
  if (parse == seda::net::HttpParse::kOk) {
    if (request.method.empty() || request.target.empty()) __builtin_trap();
    if (request.head_bytes > input.size()) __builtin_trap();
    if (request.headers.size() > seda::net::kMaxHttpHeaders) __builtin_trap();
    // Path() strips the query string; it must be a prefix of the target.
    const std::string path = request.Path();
    if (path.size() > request.target.size()) __builtin_trap();
    // Reparsing exactly the head consumed must reproduce the result — the
    // listener may recv() extra body bytes it never looks at.
    seda::net::HttpRequest again;
    if (seda::net::ParseHttpRequest(input.substr(0, request.head_bytes),
                                    &again) != seda::net::HttpParse::kOk ||
        again.method != request.method || again.target != request.target ||
        again.headers != request.headers) {
      __builtin_trap();
    }
  } else if (parse == seda::net::HttpParse::kIncomplete) {
    // Feeding half of an incomplete head must not flip it to kOk.
    seda::net::HttpRequest half_request;
    if (seda::net::ParseHttpRequest(input.substr(0, size / 2),
                                    &half_request) ==
        seda::net::HttpParse::kOk) {
      __builtin_trap();
    }
  }
  return 0;
}
