// File-replay driver used when the toolchain has no libFuzzer (gcc builds):
// each argv is a corpus file fed once through LLVMFuzzerTestOneInput. This
// keeps the harnesses compilable and the checked-in corpora replayable on
// every toolchain; coverage-guided exploration needs a clang build
// (-fsanitize=fuzzer picks its own driver and this file is not linked).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 2;
    }
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d input(s) without a crash\n", replayed);
  return 0;
}
